//! Critical-path cost accounting in the α–β–γ model.
//!
//! Implements the measurement methodology of the paper's §7.4: per
//! rank, accumulate messages, bytes, communication time, and compute
//! time; before each collective, raise every participant to the
//! running maximum over the group ("for each collective over a set of
//! processors, we maximize the critical path costs incurred by those
//! processors so far"); report per-metric maxima at the end.

use crate::topology::MachineSpec;

/// The kind of a communication operation, determining its α–β cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// One-to-all replication: `2xβ + 2⌈log₂ p⌉α` (§7.4).
    Broadcast,
    /// All-to-one combination, same cost as broadcast.
    Reduce,
    /// All-to-all combination: modeled as reduce + broadcast.
    Allreduce,
    /// Root distributes distinct pieces: `xβ + ⌈log₂ p⌉α` (§7.4: half
    /// the broadcast cost).
    Scatter,
    /// Inverse of scatter, same cost.
    Gather,
    /// Everyone ends with the concatenation: `xβ + ⌈log₂ p⌉α`.
    Allgather,
    /// Sparse reduction where the result has `x` nonzero bytes:
    /// `O(βx + α log p)` (§5.1).
    SparseReduce,
    /// A single point-to-point message (Cannon-style shift):
    /// `α + xβ` per rank.
    PointToPoint,
    /// Personalized all-to-all (redistribution): `xβ + ⌈log₂ p⌉α`
    /// with `x` the per-rank payload.
    AllToAll,
}

impl CollectiveKind {
    /// Communication time for moving `bytes` over a group of `p`
    /// ranks under `spec`.
    ///
    /// Exactly the sum [`CollectiveKind::time_beta`]` + `
    /// [`CollectiveKind::time_alpha`], in that order — the bandwidth
    /// and latency terms can be recomputed separately (the timeline
    /// analyzer's what-if engine does) and re-added to reproduce this
    /// value bit-for-bit.
    pub fn time(self, spec: &MachineSpec, p: usize, bytes: u64) -> f64 {
        self.time_beta(spec, bytes) + self.time_alpha(spec, p)
    }

    /// The bandwidth (β) term of [`CollectiveKind::time`].
    pub fn time_beta(self, spec: &MachineSpec, bytes: u64) -> f64 {
        let x = bytes as f64;
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2.0 * x * spec.beta,
            CollectiveKind::Allreduce => 4.0 * x * spec.beta,
            CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::Allgather
            | CollectiveKind::AllToAll
            | CollectiveKind::SparseReduce
            | CollectiveKind::PointToPoint => x * spec.beta,
        }
    }

    /// The latency (α) term of [`CollectiveKind::time`].
    pub fn time_alpha(self, spec: &MachineSpec, p: usize) -> f64 {
        let lg = log2_ceil(p) as f64;
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2.0 * lg * spec.alpha,
            CollectiveKind::Allreduce => 4.0 * lg * spec.alpha,
            CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::Allgather
            | CollectiveKind::AllToAll
            | CollectiveKind::SparseReduce => lg * spec.alpha,
            CollectiveKind::PointToPoint => spec.alpha,
        }
    }

    /// Message count charged to each participant's critical path.
    pub fn msgs(self, p: usize) -> u64 {
        let lg = log2_ceil(p);
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2 * lg,
            CollectiveKind::Allreduce => 4 * lg,
            CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::Allgather
            | CollectiveKind::AllToAll
            | CollectiveKind::SparseReduce => lg.max(1),
            CollectiveKind::PointToPoint => 1,
        }
    }

    /// Bytes charged to each participant's critical path.
    pub fn bytes_charged(self, bytes: u64) -> u64 {
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2 * bytes,
            CollectiveKind::Allreduce => 4 * bytes,
            _ => bytes,
        }
    }

    /// Stable lower-case name, used as the event label in traces.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::SparseReduce => "sparse_reduce",
            CollectiveKind::PointToPoint => "point_to_point",
            CollectiveKind::AllToAll => "all_to_all",
        }
    }

    /// Inverse of [`CollectiveKind::name`], so a trace consumer can
    /// recover the kind (and with it the α/β cost split) from an
    /// event's kind label.
    pub fn from_name(name: &str) -> Option<CollectiveKind> {
        Some(match name {
            "broadcast" => CollectiveKind::Broadcast,
            "reduce" => CollectiveKind::Reduce,
            "allreduce" => CollectiveKind::Allreduce,
            "scatter" => CollectiveKind::Scatter,
            "gather" => CollectiveKind::Gather,
            "allgather" => CollectiveKind::Allgather,
            "sparse_reduce" => CollectiveKind::SparseReduce,
            "point_to_point" => CollectiveKind::PointToPoint,
            "all_to_all" => CollectiveKind::AllToAll,
            _ => return None,
        })
    }
}

/// `⌈log₂ p⌉`, with `log2_ceil(1) == 0`.
pub fn log2_ceil(p: usize) -> u64 {
    assert!(p > 0, "group must be non-empty");
    (usize::BITS - (p - 1).leading_zeros()) as u64
}

/// Per-rank accumulated critical-path costs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankCost {
    /// Messages along the rank's dependent sequence of operations
    /// (`S` in Table 3).
    pub msgs: u64,
    /// Bytes along the dependent sequence (`W` in Table 3).
    pub bytes: u64,
    /// Modeled communication time in seconds.
    pub comm_time: f64,
    /// Modeled computation time in seconds.
    pub comp_time: f64,
}

impl RankCost {
    /// Elementwise maximum — the "raise to the group maximum" step of
    /// the §7.4 methodology.
    pub fn max(self, other: RankCost) -> RankCost {
        RankCost {
            msgs: self.msgs.max(other.msgs),
            bytes: self.bytes.max(other.bytes),
            comm_time: self.comm_time.max(other.comm_time),
            comp_time: self.comp_time.max(other.comp_time),
        }
    }

    /// Modeled wall-clock time of this rank (communication plus
    /// computation; the simulation is bulk-synchronous so the two
    /// never overlap, matching the paper's non-overlapping model).
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.comp_time
    }
}

/// Final cost snapshot: the per-metric critical path (maximum over
/// ranks, each metric taken independently per §7.4) plus the summed
/// compute operations.
#[derive(Clone, Debug, Default)]
pub struct CostReport {
    /// Per-metric maxima over all ranks.
    pub critical: RankCost,
    /// Total elementary operations across ranks (for work/TEPS
    /// accounting).
    pub total_ops: u64,
}

/// The per-rank cost and memory meters.
#[derive(Clone, Debug)]
pub struct CostTracker {
    ranks: Vec<RankCost>,
    resident: Vec<u64>,
    peak: Vec<u64>,
    total_ops: u64,
}

impl CostTracker {
    /// Fresh meters for `p` ranks.
    pub fn new(p: usize) -> CostTracker {
        assert!(p > 0, "machine needs at least one rank");
        CostTracker {
            ranks: vec![RankCost::default(); p],
            resident: vec![0; p],
            peak: vec![0; p],
            total_ops: 0,
        }
    }

    /// Number of ranks tracked.
    pub fn p(&self) -> usize {
        self.ranks.len()
    }

    /// Charges a collective of `kind` over `group` (rank ids) moving
    /// up to `bytes` per rank: synchronizes the group's critical
    /// paths to their maximum, then adds the collective's cost to
    /// every participant.
    pub fn collective(
        &mut self,
        spec: &MachineSpec,
        group: &[usize],
        kind: CollectiveKind,
        bytes: u64,
    ) {
        assert!(!group.is_empty(), "collective over empty group");
        let gsize = group.len();
        let mut mx = RankCost::default();
        for &r in group {
            mx = mx.max(self.ranks[r]);
        }
        let dt = kind.time(spec, gsize, bytes);
        let dm = kind.msgs(gsize);
        let db = kind.bytes_charged(bytes);
        for &r in group {
            let c = &mut self.ranks[r];
            // Raise to group max (the §7.4 synchronization), then add.
            *c = mx;
            c.comm_time += dt;
            c.msgs += dm;
            c.bytes += db;
        }
    }

    /// Charges `seconds` of retry backoff to every rank in `group`:
    /// like a collective, the group synchronizes (raise to max) and
    /// then waits out the backoff interval together.
    pub fn backoff(&mut self, group: &[usize], seconds: f64) {
        assert!(!group.is_empty(), "backoff over empty group");
        let mut mx = RankCost::default();
        for &r in group {
            mx = mx.max(self.ranks[r]);
        }
        for &r in group {
            let c = &mut self.ranks[r];
            *c = mx;
            c.comm_time += seconds;
        }
    }

    /// Meters for the machine that survives the permanent failure of
    /// rank `failed`: the survivors keep their accumulated costs,
    /// resident bytes, and peaks (degraded-mode accounting), the dead
    /// rank's meters are dropped, and `total_ops` carries over.
    pub fn shrunk(&self, failed: usize) -> CostTracker {
        assert!(failed < self.p(), "rank {failed} out of range");
        assert!(self.p() > 1, "cannot shrink a 1-rank tracker");
        let keep = |v: &[u64]| -> Vec<u64> {
            v.iter()
                .enumerate()
                .filter(|&(r, _)| r != failed)
                .map(|(_, &x)| x)
                .collect()
        };
        CostTracker {
            ranks: self
                .ranks
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != failed)
                .map(|(_, &c)| c)
                .collect(),
            resident: keep(&self.resident),
            peak: keep(&self.peak),
            total_ops: self.total_ops,
        }
    }

    /// Per-rank resident bytes, for checkpoint/rollback.
    pub fn memory_snapshot(&self) -> Vec<u64> {
        self.resident.clone()
    }

    /// Per-rank peak resident bytes. Peaks only ratchet upward
    /// ([`CostTracker::restore_memory`] leaves them alone), so every
    /// value is a monotone upper bound of all residents ever metered.
    pub fn peak_snapshot(&self) -> Vec<u64> {
        self.peak.clone()
    }

    /// Restores resident bytes from a snapshot taken on a tracker of
    /// the same rank count. Peaks are not rolled back.
    pub fn restore_memory(&mut self, snapshot: &[u64]) {
        assert_eq!(
            snapshot.len(),
            self.resident.len(),
            "memory snapshot is for a different machine size"
        );
        self.resident.copy_from_slice(snapshot);
    }

    /// Charges `ops` local operations on `rank`.
    pub fn compute(&mut self, spec: &MachineSpec, rank: usize, ops: u64) {
        self.ranks[rank].comp_time += ops as f64 * spec.gamma;
        self.total_ops += ops;
    }

    /// Charges resident memory.
    pub fn alloc(&mut self, rank: usize, bytes: u64) {
        self.resident[rank] += bytes;
        self.peak[rank] = self.peak[rank].max(self.resident[rank]);
    }

    /// Releases resident memory (saturating).
    pub fn free(&mut self, rank: usize, bytes: u64) {
        self.resident[rank] = self.resident[rank].saturating_sub(bytes);
    }

    /// Current resident bytes of `rank`.
    pub fn resident(&self, rank: usize) -> u64 {
        self.resident[rank]
    }

    /// Peak resident bytes of `rank`.
    pub fn peak(&self, rank: usize) -> u64 {
        self.peak[rank]
    }

    /// Largest peak across ranks.
    pub fn max_peak(&self) -> u64 {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// Per-rank snapshot.
    pub fn rank(&self, r: usize) -> RankCost {
        self.ranks[r]
    }

    /// Builds the per-metric critical-path report.
    pub fn report(&self) -> CostReport {
        let mut critical = RankCost::default();
        for c in &self.ranks {
            critical = critical.max(*c);
        }
        CostReport {
            critical,
            total_ops: self.total_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(p: usize) -> MachineSpec {
        MachineSpec::test(p)
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
    }

    #[test]
    fn broadcast_cost_formula() {
        // §7.4: broadcast of n bytes over p ranks costs 2nβ + 2log₂(p)α.
        let s = spec(8);
        let t = CollectiveKind::Broadcast.time(&s, 8, 100);
        assert_eq!(t, 2.0 * 100.0 + 2.0 * 3.0);
        assert_eq!(CollectiveKind::Broadcast.msgs(8), 6);
        assert_eq!(CollectiveKind::Broadcast.bytes_charged(100), 200);
    }

    #[test]
    fn scatter_is_half_broadcast() {
        let s = spec(16);
        let b = CollectiveKind::Broadcast.time(&s, 16, 500);
        let sc = CollectiveKind::Scatter.time(&s, 16, 500);
        assert_eq!(b, 2.0 * sc);
    }

    #[test]
    fn critical_path_synchronizes_group() {
        // Rank 0 does heavy compute; a later collective over {0,1}
        // must lift rank 1's path to rank 0's before adding.
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 1000);
        t.collective(&s, &[0, 1], CollectiveKind::Broadcast, 10);
        let r0 = t.rank(0);
        let r1 = t.rank(1);
        assert_eq!(r0.comp_time, r1.comp_time);
        assert_eq!(r0.comm_time, r1.comm_time);
        assert_eq!(r0.comp_time, 1000.0);
    }

    #[test]
    fn disjoint_groups_do_not_synchronize() {
        let s = spec(4);
        let mut t = CostTracker::new(4);
        t.compute(&s, 0, 1000);
        t.collective(&s, &[2, 3], CollectiveKind::Broadcast, 10);
        assert_eq!(t.rank(2).comp_time, 0.0);
        assert_eq!(t.rank(1), RankCost::default());
    }

    #[test]
    fn report_takes_per_metric_maxima() {
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 50); // rank 0: most compute
        t.collective(&s, &[1], CollectiveKind::PointToPoint, 99); // rank 1: most comm
        let r = t.report();
        assert_eq!(r.critical.comp_time, 50.0);
        assert_eq!(r.critical.bytes, 99);
        assert_eq!(r.total_ops, 50);
    }

    #[test]
    fn memory_meter_tracks_peak() {
        let mut t = CostTracker::new(1);
        t.alloc(0, 100);
        t.alloc(0, 200);
        t.free(0, 250);
        t.alloc(0, 10);
        assert_eq!(t.resident(0), 60);
        assert_eq!(t.peak(0), 300);
        assert_eq!(t.max_peak(), 300);
    }

    #[test]
    fn free_saturates() {
        let mut t = CostTracker::new(1);
        t.alloc(0, 10);
        t.free(0, 100);
        assert_eq!(t.resident(0), 0);
    }

    #[test]
    fn closed_forms_non_power_of_two_group() {
        // §7.4 closed forms at p = 6, where ⌈log₂ 6⌉ = 3 (the ceiling
        // matters: a plain log₂ would give ~2.58). MachineSpec::test
        // uses α = β = 1, so times read directly as x and log terms.
        use CollectiveKind::*;
        let s = spec(6);
        let x = 123u64;
        let (xf, lg) = (123.0, 3.0);
        for k in [Broadcast, Reduce] {
            assert_eq!(k.time(&s, 6, x), 2.0 * xf + 2.0 * lg);
            assert_eq!(k.msgs(6), 6);
            assert_eq!(k.bytes_charged(x), 2 * x);
        }
        assert_eq!(Allreduce.time(&s, 6, x), 4.0 * xf + 4.0 * lg);
        assert_eq!(Allreduce.msgs(6), 12);
        assert_eq!(Allreduce.bytes_charged(x), 4 * x);
        for k in [Scatter, Gather, Allgather, AllToAll, SparseReduce] {
            assert_eq!(k.time(&s, 6, x), xf + lg);
            assert_eq!(k.msgs(6), 3);
            assert_eq!(k.bytes_charged(x), x);
        }
        assert_eq!(PointToPoint.time(&s, 6, x), xf + 1.0);
        assert_eq!(PointToPoint.msgs(6), 1);
        assert_eq!(PointToPoint.bytes_charged(x), x);
    }

    #[test]
    fn closed_forms_single_rank_group() {
        // p = 1: the log term vanishes entirely; only bandwidth (and
        // for point-to-point the single α) remains, and no collective
        // charges log-many messages.
        use CollectiveKind::*;
        let s = spec(1);
        assert_eq!(Broadcast.time(&s, 1, 50), 100.0);
        assert_eq!(Allreduce.time(&s, 1, 50), 200.0);
        assert_eq!(Allgather.time(&s, 1, 50), 50.0);
        assert_eq!(PointToPoint.time(&s, 1, 50), 51.0);
        assert_eq!(Broadcast.msgs(1), 0);
        assert_eq!(Allreduce.msgs(1), 0);
        // The one-sided collectives still charge at least one message.
        assert_eq!(Allgather.msgs(1), 1);
        assert_eq!(SparseReduce.msgs(1), 1);
        assert_eq!(PointToPoint.msgs(1), 1);
    }

    #[test]
    fn alpha_and_beta_enter_linearly() {
        // Distinct α and β so the latency and bandwidth terms cannot
        // compensate for each other (p = 5, ⌈log₂ 5⌉ = 3).
        let s = MachineSpec {
            alpha: 10.0,
            beta: 0.25,
            ..spec(5)
        };
        assert_eq!(
            CollectiveKind::Broadcast.time(&s, 5, 8),
            2.0 * 8.0 * 0.25 + 2.0 * 3.0 * 10.0
        );
        assert_eq!(
            CollectiveKind::Allgather.time(&s, 5, 8),
            8.0 * 0.25 + 3.0 * 10.0
        );
        assert_eq!(
            CollectiveKind::PointToPoint.time(&s, 5, 8),
            10.0 + 8.0 * 0.25
        );
    }

    #[test]
    fn kind_names_are_stable() {
        use CollectiveKind::*;
        let all = [
            Broadcast,
            Reduce,
            Allreduce,
            Scatter,
            Gather,
            Allgather,
            SparseReduce,
            PointToPoint,
            AllToAll,
        ];
        let names: Vec<&str> = all.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "broadcast",
                "reduce",
                "allreduce",
                "scatter",
                "gather",
                "allgather",
                "sparse_reduce",
                "point_to_point",
                "all_to_all"
            ]
        );
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), all.len());
        for k in all {
            assert_eq!(CollectiveKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CollectiveKind::from_name("smoke_signal"), None);
    }

    #[test]
    fn time_splits_bit_exactly_into_beta_plus_alpha() {
        use CollectiveKind::*;
        let s = MachineSpec {
            alpha: 1.07e-6,
            beta: 3.3e-10,
            ..spec(7)
        };
        for k in [
            Broadcast,
            Reduce,
            Allreduce,
            Scatter,
            Gather,
            Allgather,
            SparseReduce,
            PointToPoint,
            AllToAll,
        ] {
            for bytes in [0u64, 1, 12345, 999_999_937] {
                let whole = k.time(&s, 7, bytes);
                let parts = k.time_beta(&s, bytes) + k.time_alpha(&s, 7);
                assert_eq!(whole.to_bits(), parts.to_bits(), "{k:?} bytes={bytes}");
            }
        }
    }

    #[test]
    fn backoff_synchronizes_then_waits() {
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 100);
        t.backoff(&[0, 1], 2.5);
        assert_eq!(t.rank(1).comp_time, 100.0);
        assert_eq!(t.rank(0).comm_time, 2.5);
        assert_eq!(t.rank(1).comm_time, 2.5);
    }

    #[test]
    fn shrunk_drops_dead_rank_and_keeps_survivors() {
        let s = spec(3);
        let mut t = CostTracker::new(3);
        t.compute(&s, 0, 10);
        t.compute(&s, 2, 30);
        t.alloc(1, 5);
        t.alloc(2, 7);
        let u = t.shrunk(1);
        assert_eq!(u.p(), 2);
        assert_eq!(u.rank(0).comp_time, 10.0);
        assert_eq!(u.rank(1).comp_time, 30.0);
        assert_eq!(u.resident(1), 7);
        assert_eq!(u.total_ops, t.total_ops);
    }

    #[test]
    fn sequential_collectives_accumulate() {
        let s = spec(4);
        let mut t = CostTracker::new(4);
        let g: Vec<usize> = (0..4).collect();
        t.collective(&s, &g, CollectiveKind::Broadcast, 100);
        t.collective(&s, &g, CollectiveKind::Reduce, 100);
        let r = t.report();
        // Two dependent collectives: costs add along the path.
        assert_eq!(r.critical.bytes, 400);
        assert_eq!(r.critical.msgs, 8);
    }
}
