//! Critical-path cost accounting in the α–β–γ model.
//!
//! Implements the measurement methodology of the paper's §7.4: per
//! rank, accumulate messages, bytes, communication time, and compute
//! time; before each collective, raise every participant to the
//! running maximum over the group ("for each collective over a set of
//! processors, we maximize the critical path costs incurred by those
//! processors so far"); report per-metric maxima at the end.

use crate::topology::MachineSpec;

/// The kind of a communication operation, determining its α–β cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// One-to-all replication: `2xβ + 2⌈log₂ p⌉α` (§7.4).
    Broadcast,
    /// All-to-one combination, same cost as broadcast.
    Reduce,
    /// All-to-all combination: modeled as reduce + broadcast.
    Allreduce,
    /// Root distributes distinct pieces: `xβ + ⌈log₂ p⌉α` (§7.4: half
    /// the broadcast cost).
    Scatter,
    /// Inverse of scatter, same cost.
    Gather,
    /// Everyone ends with the concatenation: `xβ + ⌈log₂ p⌉α`.
    Allgather,
    /// Sparse reduction where the result has `x` nonzero bytes:
    /// `O(βx + α log p)` (§5.1).
    SparseReduce,
    /// A single point-to-point message (Cannon-style shift):
    /// `α + xβ` per rank.
    PointToPoint,
    /// Personalized all-to-all (redistribution): `xβ + ⌈log₂ p⌉α`
    /// with `x` the per-rank payload.
    AllToAll,
}

impl CollectiveKind {
    /// Communication time for moving `bytes` over a group of `p`
    /// ranks under `spec`.
    ///
    /// Exactly the sum [`CollectiveKind::time_beta`]` + `
    /// [`CollectiveKind::time_alpha`], in that order — the bandwidth
    /// and latency terms can be recomputed separately (the timeline
    /// analyzer's what-if engine does) and re-added to reproduce this
    /// value bit-for-bit.
    pub fn time(self, spec: &MachineSpec, p: usize, bytes: u64) -> f64 {
        self.time_beta(spec, bytes) + self.time_alpha(spec, p)
    }

    /// The bandwidth (β) term of [`CollectiveKind::time`].
    pub fn time_beta(self, spec: &MachineSpec, bytes: u64) -> f64 {
        let x = bytes as f64;
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2.0 * x * spec.beta,
            CollectiveKind::Allreduce => 4.0 * x * spec.beta,
            CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::Allgather
            | CollectiveKind::AllToAll
            | CollectiveKind::SparseReduce
            | CollectiveKind::PointToPoint => x * spec.beta,
        }
    }

    /// The latency (α) term of [`CollectiveKind::time`].
    pub fn time_alpha(self, spec: &MachineSpec, p: usize) -> f64 {
        let lg = log2_ceil(p) as f64;
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2.0 * lg * spec.alpha,
            CollectiveKind::Allreduce => 4.0 * lg * spec.alpha,
            CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::Allgather
            | CollectiveKind::AllToAll
            | CollectiveKind::SparseReduce => lg * spec.alpha,
            CollectiveKind::PointToPoint => spec.alpha,
        }
    }

    /// Message count charged to each participant's critical path.
    pub fn msgs(self, p: usize) -> u64 {
        let lg = log2_ceil(p);
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2 * lg,
            CollectiveKind::Allreduce => 4 * lg,
            CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::Allgather
            | CollectiveKind::AllToAll
            | CollectiveKind::SparseReduce => lg.max(1),
            CollectiveKind::PointToPoint => 1,
        }
    }

    /// Bytes charged to each participant's critical path.
    pub fn bytes_charged(self, bytes: u64) -> u64 {
        match self {
            CollectiveKind::Broadcast | CollectiveKind::Reduce => 2 * bytes,
            CollectiveKind::Allreduce => 4 * bytes,
            _ => bytes,
        }
    }

    /// Stable lower-case name, used as the event label in traces.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::SparseReduce => "sparse_reduce",
            CollectiveKind::PointToPoint => "point_to_point",
            CollectiveKind::AllToAll => "all_to_all",
        }
    }

    /// Inverse of [`CollectiveKind::name`], so a trace consumer can
    /// recover the kind (and with it the α/β cost split) from an
    /// event's kind label.
    pub fn from_name(name: &str) -> Option<CollectiveKind> {
        Some(match name {
            "broadcast" => CollectiveKind::Broadcast,
            "reduce" => CollectiveKind::Reduce,
            "allreduce" => CollectiveKind::Allreduce,
            "scatter" => CollectiveKind::Scatter,
            "gather" => CollectiveKind::Gather,
            "allgather" => CollectiveKind::Allgather,
            "sparse_reduce" => CollectiveKind::SparseReduce,
            "point_to_point" => CollectiveKind::PointToPoint,
            "all_to_all" => CollectiveKind::AllToAll,
            _ => return None,
        })
    }
}

/// `⌈log₂ p⌉`, with `log2_ceil(1) == 0`.
pub fn log2_ceil(p: usize) -> u64 {
    assert!(p > 0, "group must be non-empty");
    (usize::BITS - (p - 1).leading_zeros()) as u64
}

/// Per-rank accumulated critical-path costs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankCost {
    /// Messages along the rank's dependent sequence of operations
    /// (`S` in Table 3).
    pub msgs: u64,
    /// Bytes along the dependent sequence (`W` in Table 3).
    pub bytes: u64,
    /// Modeled communication time in seconds.
    pub comm_time: f64,
    /// Modeled computation time in seconds.
    pub comp_time: f64,
}

impl RankCost {
    /// Elementwise maximum — the "raise to the group maximum" step of
    /// the §7.4 methodology.
    pub fn max(self, other: RankCost) -> RankCost {
        RankCost {
            msgs: self.msgs.max(other.msgs),
            bytes: self.bytes.max(other.bytes),
            comm_time: self.comm_time.max(other.comm_time),
            comp_time: self.comp_time.max(other.comp_time),
        }
    }

    /// Modeled time this rank spent busy (communication plus
    /// computation). Under the paper's serialized accounting
    /// (`MachineSpec::overlap == false`) busy time and elapsed time
    /// coincide; under overlapped accounting a collective's bandwidth
    /// term can hide beneath local compute, so the rank's causal clock
    /// ([`CostTracker::clock`]) may be *smaller* than this sum. The
    /// meters themselves are mode-independent: the same run charges
    /// the same messages, bytes, and busy seconds either way.
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.comp_time
    }
}

/// Final cost snapshot: the per-metric critical path (maximum over
/// ranks, each metric taken independently per §7.4) plus the summed
/// compute operations.
#[derive(Clone, Debug, Default)]
pub struct CostReport {
    /// Per-metric maxima over all ranks.
    pub critical: RankCost,
    /// Total elementary operations across ranks (for work/TEPS
    /// accounting).
    pub total_ops: u64,
}

/// The per-rank cost and memory meters.
#[derive(Clone, Debug)]
pub struct CostTracker {
    ranks: Vec<RankCost>,
    resident: Vec<u64>,
    peak: Vec<u64>,
    total_ops: u64,
    /// Per-rank causal clock: when the rank's last segment ended. The
    /// maximum over ranks is the run's modeled makespan.
    clock: Vec<f64>,
    /// Per-rank clock at the rank's last synchronization point — the
    /// issue base of the next overlapped collective. Invariant:
    /// `synced[r] <= clock[r]` (compute only advances `clock`).
    synced: Vec<f64>,
}

impl CostTracker {
    /// Fresh meters for `p` ranks.
    pub fn new(p: usize) -> CostTracker {
        assert!(p > 0, "machine needs at least one rank");
        CostTracker {
            ranks: vec![RankCost::default(); p],
            resident: vec![0; p],
            peak: vec![0; p],
            total_ops: 0,
            clock: vec![0.0; p],
            synced: vec![0.0; p],
        }
    }

    /// Number of ranks tracked.
    pub fn p(&self) -> usize {
        self.ranks.len()
    }

    /// The issue clock an overlapped collective over `group` would
    /// capture right now: the maximum over participants of the clock
    /// at their last synchronization point.
    pub fn issue_time(&self, group: &[usize]) -> f64 {
        let mut issue = 0.0f64;
        for &r in group {
            issue = issue.max(self.synced[r]);
        }
        issue
    }

    /// Charges a collective of `kind` over `group` (rank ids) moving
    /// up to `bytes` per rank: synchronizes the group's critical
    /// paths to their maximum, then adds the collective's cost to
    /// every participant. The causal clocks advance serialized
    /// (`ready + dt`) or overlapped (`max(ready + α, issue + dt)`)
    /// per `spec.overlap`, with the issue clock captured here — i.e.
    /// this is the blocking call; a split issue/wait pair captures the
    /// issue clock earlier via [`CostTracker::issue_time`] and
    /// completes through [`CostTracker::complete_collective`].
    pub fn collective(
        &mut self,
        spec: &MachineSpec,
        group: &[usize],
        kind: CollectiveKind,
        bytes: u64,
    ) {
        let issue = self.issue_time(group);
        self.complete_collective(spec, group, kind, bytes, issue);
    }

    /// Completes a collective whose issue clock was captured earlier
    /// (at [`CostTracker::issue_time`]). Meters charge exactly like
    /// the blocking path — raise to group max, then add — so message,
    /// byte, and busy-second accounting is independent of the overlap
    /// mode; only the causal clocks differ:
    ///
    /// * serialized: `post = ready + dt`;
    /// * overlapped: `post = max(ready + α, issue + dt)` — the
    ///   latency term alone gates the already-synchronized group, the
    ///   full modeled time runs from the issue point.
    ///
    /// Both overlapped branches are single IEEE additions on an
    /// earlier clock, so a critical path folds bit-exactly; and since
    /// `α <= dt` (for `β, bytes >= 0`) and `issue <= ready`, the
    /// overlapped completion never exceeds the serialized one.
    pub fn complete_collective(
        &mut self,
        spec: &MachineSpec,
        group: &[usize],
        kind: CollectiveKind,
        bytes: u64,
        issue: f64,
    ) {
        assert!(!group.is_empty(), "collective over empty group");
        let gsize = group.len();
        let mut mx = RankCost::default();
        for &r in group {
            mx = mx.max(self.ranks[r]);
        }
        let dt = kind.time(spec, gsize, bytes);
        let dm = kind.msgs(gsize);
        let db = kind.bytes_charged(bytes);
        for &r in group {
            let c = &mut self.ranks[r];
            // Raise to group max (the §7.4 synchronization), then add.
            *c = mx;
            c.comm_time += dt;
            c.msgs += dm;
            c.bytes += db;
        }
        let mut ready = 0.0f64;
        for &r in group {
            ready = ready.max(self.clock[r]);
        }
        let post = if spec.overlap {
            let alpha = kind.time_alpha(spec, gsize);
            (ready + alpha).max(issue + dt)
        } else {
            ready + dt
        };
        for &r in group {
            self.clock[r] = post;
            self.synced[r] = post;
        }
    }

    /// Charges `seconds` of retry backoff to every rank in `group`:
    /// like a collective, the group synchronizes (raise to max) and
    /// then waits out the backoff interval together. Backoff never
    /// overlaps — a retry wait is dead time in both modes.
    pub fn backoff(&mut self, group: &[usize], seconds: f64) {
        assert!(!group.is_empty(), "backoff over empty group");
        let mut mx = RankCost::default();
        for &r in group {
            mx = mx.max(self.ranks[r]);
        }
        for &r in group {
            let c = &mut self.ranks[r];
            *c = mx;
            c.comm_time += seconds;
        }
        let mut ready = 0.0f64;
        for &r in group {
            ready = ready.max(self.clock[r]);
        }
        let post = ready + seconds;
        for &r in group {
            self.clock[r] = post;
            self.synced[r] = post;
        }
    }

    /// Meters for the machine that survives the permanent failure of
    /// rank `failed`: the survivors keep their accumulated costs,
    /// resident bytes, and peaks (degraded-mode accounting), the dead
    /// rank's meters are dropped, and `total_ops` carries over.
    pub fn shrunk(&self, failed: usize) -> CostTracker {
        assert!(failed < self.p(), "rank {failed} out of range");
        assert!(self.p() > 1, "cannot shrink a 1-rank tracker");
        let keep = |v: &[u64]| -> Vec<u64> {
            v.iter()
                .enumerate()
                .filter(|&(r, _)| r != failed)
                .map(|(_, &x)| x)
                .collect()
        };
        let keep_f = |v: &[f64]| -> Vec<f64> {
            v.iter()
                .enumerate()
                .filter(|&(r, _)| r != failed)
                .map(|(_, &x)| x)
                .collect()
        };
        CostTracker {
            ranks: self
                .ranks
                .iter()
                .enumerate()
                .filter(|&(r, _)| r != failed)
                .map(|(_, &c)| c)
                .collect(),
            resident: keep(&self.resident),
            peak: keep(&self.peak),
            total_ops: self.total_ops,
            clock: keep_f(&self.clock),
            synced: keep_f(&self.synced),
        }
    }

    /// Per-rank resident bytes, for checkpoint/rollback.
    pub fn memory_snapshot(&self) -> Vec<u64> {
        self.resident.clone()
    }

    /// Per-rank peak resident bytes. Peaks only ratchet upward
    /// ([`CostTracker::restore_memory`] leaves them alone), so every
    /// value is a monotone upper bound of all residents ever metered.
    pub fn peak_snapshot(&self) -> Vec<u64> {
        self.peak.clone()
    }

    /// Restores resident bytes from a snapshot taken on a tracker of
    /// the same rank count. Peaks are not rolled back.
    pub fn restore_memory(&mut self, snapshot: &[u64]) {
        assert_eq!(
            snapshot.len(),
            self.resident.len(),
            "memory snapshot is for a different machine size"
        );
        self.resident.copy_from_slice(snapshot);
    }

    /// Charges `ops` local operations on `rank`.
    pub fn compute(&mut self, spec: &MachineSpec, rank: usize, ops: u64) {
        let dt = ops as f64 * spec.gamma;
        self.ranks[rank].comp_time += dt;
        self.clock[rank] += dt;
        self.total_ops += ops;
    }

    /// Charges resident memory.
    pub fn alloc(&mut self, rank: usize, bytes: u64) {
        self.resident[rank] += bytes;
        self.peak[rank] = self.peak[rank].max(self.resident[rank]);
    }

    /// Releases resident memory (saturating).
    pub fn free(&mut self, rank: usize, bytes: u64) {
        self.resident[rank] = self.resident[rank].saturating_sub(bytes);
    }

    /// Current resident bytes of `rank`.
    pub fn resident(&self, rank: usize) -> u64 {
        self.resident[rank]
    }

    /// Peak resident bytes of `rank`.
    pub fn peak(&self, rank: usize) -> u64 {
        self.peak[rank]
    }

    /// Largest peak across ranks.
    pub fn max_peak(&self) -> u64 {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// Per-rank snapshot.
    pub fn rank(&self, r: usize) -> RankCost {
        self.ranks[r]
    }

    /// Causal clock of `rank` (when its last segment ended).
    pub fn clock(&self, r: usize) -> f64 {
        self.clock[r]
    }

    /// The modeled makespan: maximum causal clock over ranks.
    pub fn makespan_s(&self) -> f64 {
        self.clock.iter().copied().fold(0.0, f64::max)
    }

    /// Builds the per-metric critical-path report.
    pub fn report(&self) -> CostReport {
        let mut critical = RankCost::default();
        for c in &self.ranks {
            critical = critical.max(*c);
        }
        CostReport {
            critical,
            total_ops: self.total_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(p: usize) -> MachineSpec {
        MachineSpec::test(p)
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
    }

    #[test]
    fn broadcast_cost_formula() {
        // §7.4: broadcast of n bytes over p ranks costs 2nβ + 2log₂(p)α.
        let s = spec(8);
        let t = CollectiveKind::Broadcast.time(&s, 8, 100);
        assert_eq!(t, 2.0 * 100.0 + 2.0 * 3.0);
        assert_eq!(CollectiveKind::Broadcast.msgs(8), 6);
        assert_eq!(CollectiveKind::Broadcast.bytes_charged(100), 200);
    }

    #[test]
    fn scatter_is_half_broadcast() {
        let s = spec(16);
        let b = CollectiveKind::Broadcast.time(&s, 16, 500);
        let sc = CollectiveKind::Scatter.time(&s, 16, 500);
        assert_eq!(b, 2.0 * sc);
    }

    #[test]
    fn critical_path_synchronizes_group() {
        // Rank 0 does heavy compute; a later collective over {0,1}
        // must lift rank 1's path to rank 0's before adding.
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 1000);
        t.collective(&s, &[0, 1], CollectiveKind::Broadcast, 10);
        let r0 = t.rank(0);
        let r1 = t.rank(1);
        assert_eq!(r0.comp_time, r1.comp_time);
        assert_eq!(r0.comm_time, r1.comm_time);
        assert_eq!(r0.comp_time, 1000.0);
    }

    #[test]
    fn disjoint_groups_do_not_synchronize() {
        let s = spec(4);
        let mut t = CostTracker::new(4);
        t.compute(&s, 0, 1000);
        t.collective(&s, &[2, 3], CollectiveKind::Broadcast, 10);
        assert_eq!(t.rank(2).comp_time, 0.0);
        assert_eq!(t.rank(1), RankCost::default());
    }

    #[test]
    fn report_takes_per_metric_maxima() {
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 50); // rank 0: most compute
        t.collective(&s, &[1], CollectiveKind::PointToPoint, 99); // rank 1: most comm
        let r = t.report();
        assert_eq!(r.critical.comp_time, 50.0);
        assert_eq!(r.critical.bytes, 99);
        assert_eq!(r.total_ops, 50);
    }

    #[test]
    fn memory_meter_tracks_peak() {
        let mut t = CostTracker::new(1);
        t.alloc(0, 100);
        t.alloc(0, 200);
        t.free(0, 250);
        t.alloc(0, 10);
        assert_eq!(t.resident(0), 60);
        assert_eq!(t.peak(0), 300);
        assert_eq!(t.max_peak(), 300);
    }

    #[test]
    fn free_saturates() {
        let mut t = CostTracker::new(1);
        t.alloc(0, 10);
        t.free(0, 100);
        assert_eq!(t.resident(0), 0);
    }

    #[test]
    fn closed_forms_non_power_of_two_group() {
        // §7.4 closed forms at p = 6, where ⌈log₂ 6⌉ = 3 (the ceiling
        // matters: a plain log₂ would give ~2.58). MachineSpec::test
        // uses α = β = 1, so times read directly as x and log terms.
        use CollectiveKind::*;
        let s = spec(6);
        let x = 123u64;
        let (xf, lg) = (123.0, 3.0);
        for k in [Broadcast, Reduce] {
            assert_eq!(k.time(&s, 6, x), 2.0 * xf + 2.0 * lg);
            assert_eq!(k.msgs(6), 6);
            assert_eq!(k.bytes_charged(x), 2 * x);
        }
        assert_eq!(Allreduce.time(&s, 6, x), 4.0 * xf + 4.0 * lg);
        assert_eq!(Allreduce.msgs(6), 12);
        assert_eq!(Allreduce.bytes_charged(x), 4 * x);
        for k in [Scatter, Gather, Allgather, AllToAll, SparseReduce] {
            assert_eq!(k.time(&s, 6, x), xf + lg);
            assert_eq!(k.msgs(6), 3);
            assert_eq!(k.bytes_charged(x), x);
        }
        assert_eq!(PointToPoint.time(&s, 6, x), xf + 1.0);
        assert_eq!(PointToPoint.msgs(6), 1);
        assert_eq!(PointToPoint.bytes_charged(x), x);
    }

    #[test]
    fn closed_forms_single_rank_group() {
        // p = 1: the log term vanishes entirely; only bandwidth (and
        // for point-to-point the single α) remains, and no collective
        // charges log-many messages.
        use CollectiveKind::*;
        let s = spec(1);
        assert_eq!(Broadcast.time(&s, 1, 50), 100.0);
        assert_eq!(Allreduce.time(&s, 1, 50), 200.0);
        assert_eq!(Allgather.time(&s, 1, 50), 50.0);
        assert_eq!(PointToPoint.time(&s, 1, 50), 51.0);
        assert_eq!(Broadcast.msgs(1), 0);
        assert_eq!(Allreduce.msgs(1), 0);
        // The one-sided collectives still charge at least one message.
        assert_eq!(Allgather.msgs(1), 1);
        assert_eq!(SparseReduce.msgs(1), 1);
        assert_eq!(PointToPoint.msgs(1), 1);
    }

    #[test]
    fn alpha_and_beta_enter_linearly() {
        // Distinct α and β so the latency and bandwidth terms cannot
        // compensate for each other (p = 5, ⌈log₂ 5⌉ = 3).
        let s = MachineSpec {
            alpha: 10.0,
            beta: 0.25,
            ..spec(5)
        };
        assert_eq!(
            CollectiveKind::Broadcast.time(&s, 5, 8),
            2.0 * 8.0 * 0.25 + 2.0 * 3.0 * 10.0
        );
        assert_eq!(
            CollectiveKind::Allgather.time(&s, 5, 8),
            8.0 * 0.25 + 3.0 * 10.0
        );
        assert_eq!(
            CollectiveKind::PointToPoint.time(&s, 5, 8),
            10.0 + 8.0 * 0.25
        );
    }

    #[test]
    fn kind_names_are_stable() {
        use CollectiveKind::*;
        let all = [
            Broadcast,
            Reduce,
            Allreduce,
            Scatter,
            Gather,
            Allgather,
            SparseReduce,
            PointToPoint,
            AllToAll,
        ];
        let names: Vec<&str> = all.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "broadcast",
                "reduce",
                "allreduce",
                "scatter",
                "gather",
                "allgather",
                "sparse_reduce",
                "point_to_point",
                "all_to_all"
            ]
        );
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), all.len());
        for k in all {
            assert_eq!(CollectiveKind::from_name(k.name()), Some(k));
        }
        assert_eq!(CollectiveKind::from_name("smoke_signal"), None);
    }

    #[test]
    fn time_splits_bit_exactly_into_beta_plus_alpha() {
        use CollectiveKind::*;
        let s = MachineSpec {
            alpha: 1.07e-6,
            beta: 3.3e-10,
            ..spec(7)
        };
        for k in [
            Broadcast,
            Reduce,
            Allreduce,
            Scatter,
            Gather,
            Allgather,
            SparseReduce,
            PointToPoint,
            AllToAll,
        ] {
            for bytes in [0u64, 1, 12345, 999_999_937] {
                let whole = k.time(&s, 7, bytes);
                let parts = k.time_beta(&s, bytes) + k.time_alpha(&s, 7);
                assert_eq!(whole.to_bits(), parts.to_bits(), "{k:?} bytes={bytes}");
            }
        }
    }

    #[test]
    fn backoff_synchronizes_then_waits() {
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 100);
        t.backoff(&[0, 1], 2.5);
        assert_eq!(t.rank(1).comp_time, 100.0);
        assert_eq!(t.rank(0).comm_time, 2.5);
        assert_eq!(t.rank(1).comm_time, 2.5);
    }

    #[test]
    fn shrunk_drops_dead_rank_and_keeps_survivors() {
        let s = spec(3);
        let mut t = CostTracker::new(3);
        t.compute(&s, 0, 10);
        t.compute(&s, 2, 30);
        t.alloc(1, 5);
        t.alloc(2, 7);
        let u = t.shrunk(1);
        assert_eq!(u.p(), 2);
        assert_eq!(u.rank(0).comp_time, 10.0);
        assert_eq!(u.rank(1).comp_time, 30.0);
        assert_eq!(u.resident(1), 7);
        assert_eq!(u.total_ops, t.total_ops);
    }

    #[test]
    fn serialized_clock_is_group_max_plus_dt() {
        let s = spec(2);
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 3);
        // Broadcast of 10 B over 2 ranks: dt = 20 + 2 = 22.
        t.collective(&s, &[0, 1], CollectiveKind::Broadcast, 10);
        assert_eq!(t.clock(0), 25.0);
        assert_eq!(t.clock(1), 25.0);
        t.compute(&s, 1, 5);
        assert_eq!(t.makespan_s(), 30.0);
    }

    #[test]
    fn overlapped_clock_hides_bandwidth_under_compute() {
        let s = MachineSpec {
            overlap: true,
            ..spec(2)
        };
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 3);
        // Broadcast of 10 B: dt = 22, α = 2, issue = 0 (no prior
        // sync), ready = 3 → post = max(3 + 2, 0 + 22) = 22.
        t.collective(&s, &[0, 1], CollectiveKind::Broadcast, 10);
        assert_eq!(t.clock(0), 22.0);
        assert_eq!(t.clock(1), 22.0);
        // Compute 5 on rank 0 → 27. Allgather of 5 B: dt = 6, α = 1,
        // issue = 22, ready = 27 → post = max(28, 28) = 28.
        t.compute(&s, 0, 5);
        t.collective(&s, &[0, 1], CollectiveKind::Allgather, 5);
        assert_eq!(t.makespan_s(), 28.0);
    }

    #[test]
    fn early_issue_overlaps_two_collectives() {
        let s = MachineSpec {
            overlap: true,
            ..spec(2)
        };
        let mut t = CostTracker::new(2);
        t.compute(&s, 0, 10);
        // Issue both before completing either: both capture issue = 0.
        let g = [0usize, 1];
        let i1 = t.issue_time(&g);
        let i2 = t.issue_time(&g);
        assert_eq!(i1, 0.0);
        // Allgather 8 B: dt = 9, α = 1. First wait: ready = 10 →
        // max(11, 9) = 11. Second: issue still 0, ready = 11 →
        // max(12, 9) = 12. Blocking would have given 10+9+9 = 28.
        t.complete_collective(&s, &g, CollectiveKind::Allgather, 8, i1);
        t.complete_collective(&s, &g, CollectiveKind::Allgather, 8, i2);
        assert_eq!(t.makespan_s(), 12.0);
    }

    #[test]
    fn meters_are_independent_of_overlap_mode() {
        let serial = spec(3);
        let over = MachineSpec {
            overlap: true,
            ..spec(3)
        };
        let drive = |s: &MachineSpec| {
            let mut t = CostTracker::new(3);
            t.compute(s, 0, 40);
            t.collective(s, &[0, 1], CollectiveKind::Broadcast, 7);
            t.compute(s, 2, 9);
            t.collective(s, &[0, 1, 2], CollectiveKind::SparseReduce, 13);
            t.backoff(&[1, 2], 0.5);
            t
        };
        let a = drive(&serial);
        let b = drive(&over);
        for r in 0..3 {
            assert_eq!(a.rank(r), b.rank(r), "rank {r} meters diverge");
        }
        assert_eq!(a.report().total_ops, b.report().total_ops);
        // Only the clocks differ (overlapped never later).
        for r in 0..3 {
            assert!(b.clock(r) <= a.clock(r));
        }
    }

    #[test]
    fn overlapped_makespan_never_exceeds_serialized() {
        // A pseudo-random op soup replayed under both modes.
        let serial = spec(4);
        let over = MachineSpec {
            overlap: true,
            ..spec(4)
        };
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let kinds = [
            CollectiveKind::Broadcast,
            CollectiveKind::Allgather,
            CollectiveKind::SparseReduce,
            CollectiveKind::PointToPoint,
            CollectiveKind::Allreduce,
        ];
        let mut ops = Vec::new();
        for _ in 0..200 {
            let r = step();
            if r % 3 == 0 {
                ops.push((None, (r >> 8) % 500, 1 + ((r >> 24) % 4) as usize));
            } else {
                let kind = kinds[(r >> 4) as usize % kinds.len()];
                let lo = ((r >> 16) % 4) as usize;
                let hi = lo + 1 + ((r >> 32) % (4 - lo as u64)) as usize;
                ops.push((Some(kind), (r >> 8) % 300, lo * 8 + hi));
            }
        }
        let run = |s: &MachineSpec| {
            let mut t = CostTracker::new(4);
            for &(kind, amount, enc) in &ops {
                match kind {
                    None => t.compute(s, enc % 4, amount),
                    Some(k) => {
                        let (lo, hi) = (enc / 8, enc % 8);
                        let group: Vec<usize> = (lo..hi.min(4)).collect();
                        t.collective(s, &group, k, amount);
                    }
                }
            }
            t.makespan_s()
        };
        assert!(run(&over) <= run(&serial));
    }

    #[test]
    fn sequential_collectives_accumulate() {
        let s = spec(4);
        let mut t = CostTracker::new(4);
        let g: Vec<usize> = (0..4).collect();
        t.collective(&s, &g, CollectiveKind::Broadcast, 100);
        t.collective(&s, &g, CollectiveKind::Reduce, 100);
        let r = t.report();
        // Two dependent collectives: costs add along the path.
        assert_eq!(r.critical.bytes, 400);
        assert_eq!(r.critical.msgs, 8);
    }
}
