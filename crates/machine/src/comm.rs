//! Rank groups: the communicator subsets collectives run over.
//!
//! Distributed matrix algorithms operate on processor-grid rows,
//! columns, and fibers; a [`Group`] names such a subset of world
//! ranks, ordered (the i-th group member holds the i-th piece of any
//! scattered/gathered payload).

/// An ordered, duplicate-free set of rank ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// The world group `0..p`.
    pub fn all(p: usize) -> Group {
        Group {
            ranks: (0..p).collect(),
        }
    }

    /// A group from explicit rank ids.
    ///
    /// # Panics
    /// Panics on duplicates or an empty list.
    pub fn new(ranks: Vec<usize>) -> Group {
        assert!(!ranks.is_empty(), "empty group");
        let mut seen = ranks.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ranks.len(), "duplicate ranks in group");
        Group { ranks }
    }

    /// Member rank ids in group order.
    #[inline]
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the group is a singleton (collectives over it are
    /// free).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The world rank of group member `idx`.
    #[inline]
    pub fn rank_at(&self, idx: usize) -> usize {
        self.ranks[idx]
    }

    /// Position of world rank `r` within the group, if a member.
    pub fn index_of(&self, r: usize) -> Option<usize> {
        self.ranks.iter().position(|&x| x == r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group() {
        let g = Group::all(4);
        assert_eq!(g.ranks(), &[0, 1, 2, 3]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn membership_lookup() {
        let g = Group::new(vec![5, 2, 9]);
        assert_eq!(g.index_of(2), Some(1));
        assert_eq!(g.index_of(7), None);
        assert_eq!(g.rank_at(2), 9);
    }

    #[test]
    #[should_panic]
    fn duplicates_rejected() {
        let _ = Group::new(vec![1, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        let _ = Group::new(vec![]);
    }
}
