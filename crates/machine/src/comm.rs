//! Rank groups: the communicator subsets collectives run over.
//!
//! Distributed matrix algorithms operate on processor-grid rows,
//! columns, and fibers; a [`Group`] names such a subset of world
//! ranks, ordered (the i-th group member holds the i-th piece of any
//! scattered/gathered payload).

/// An ordered, duplicate-free set of rank ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// The world group `0..p`.
    pub fn all(p: usize) -> Group {
        Group {
            ranks: (0..p).collect(),
        }
    }

    /// A group from explicit rank ids. User-reachable configuration
    /// (grid shapes, replication factors) flows into groups, so an
    /// empty or duplicated member list is a typed error rather than a
    /// panic.
    pub fn new(ranks: Vec<usize>) -> Result<Group, crate::MachineError> {
        if ranks.is_empty() {
            return Err(crate::MachineError::invalid("empty rank group"));
        }
        let mut seen = ranks.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != ranks.len() {
            return Err(crate::MachineError::invalid(format!(
                "duplicate ranks in group {ranks:?}"
            )));
        }
        Ok(Group { ranks })
    }

    /// Member rank ids in group order.
    #[inline]
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the group is a singleton (collectives over it are
    /// free).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The world rank of group member `idx`.
    #[inline]
    pub fn rank_at(&self, idx: usize) -> usize {
        self.ranks[idx]
    }

    /// Position of world rank `r` within the group, if a member.
    pub fn index_of(&self, r: usize) -> Option<usize> {
        self.ranks.iter().position(|&x| x == r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group() {
        let g = Group::all(4);
        assert_eq!(g.ranks(), &[0, 1, 2, 3]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn membership_lookup() {
        let g = Group::new(vec![5, 2, 9]).unwrap();
        assert_eq!(g.index_of(2), Some(1));
        assert_eq!(g.index_of(7), None);
        assert_eq!(g.rank_at(2), 9);
    }

    #[test]
    fn duplicates_rejected() {
        assert!(matches!(
            Group::new(vec![1, 2, 1]),
            Err(crate::MachineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Group::new(vec![]),
            Err(crate::MachineError::InvalidConfig { .. })
        ));
    }
}
