//! Criterion microbenchmark of the pool-parallel SpGEMM: serial
//! reference vs the flops-balanced `mfbc-parallel` path at 1, 2, 4,
//! and 8 workers, on the seeded 2048-vertex paper R-MAT and an
//! Erdős–Rényi graph of matching size.
//!
//! The parallel path is bit-identical to serial at every thread
//! count (asserted once per operand pair before timing), so this
//! bench measures pure scheduling + partitioning cost/benefit.
//! Speedups materialize in proportion to the cores the container
//! actually grants; on a single-core runner the 1-thread row shows
//! the no-pool fast path and the others show pool overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfbc_algebra::kernel::{BellmanFordKernel, KernelOut, TropicalKernel};
use mfbc_algebra::{Dist, Multpath, MultpathMonoid, SpMulKernel};
use mfbc_graph::gen::{rmat, uniform, RmatConfig};
use mfbc_graph::Graph;
use mfbc_sparse::{spgemm, spgemm_serial, Coo, Csr};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn frontier(nb: usize, n: usize, per_row: usize, seed: u64) -> Csr<Multpath> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(nb, n);
    for s in 0..nb {
        for _ in 0..per_row {
            coo.push(
                s,
                rng.gen_range(0..n),
                Multpath::new(Dist::new(rng.gen_range(1..20)), 1.0),
            );
        }
    }
    coo.into_csr::<MultpathMonoid>()
}

/// Asserts the pool product equals serial at every thread count, then
/// benches serial plus each pool size.
fn bench_pair<K>(c: &mut Criterion, group_name: &str, a: &Csr<K::Left>, b: &Csr<K::Right>)
where
    K: SpMulKernel,
    KernelOut<K>: Clone + PartialEq + Send + Sync + std::fmt::Debug,
{
    let reference = spgemm_serial::<K>(a, b);
    for t in THREADS {
        let out = mfbc_parallel::with_threads(t, || spgemm::<K>(a, b));
        assert_eq!(reference.mat.first_difference(&out.mat), None);
        assert_eq!(reference.ops, out.ops);
    }

    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);
    group.bench_function("serial", |bch| {
        bch.iter(|| black_box(spgemm_serial::<K>(a, b)))
    });
    for t in THREADS {
        group.bench_with_input(BenchmarkId::new("pool", t), &t, |bch, &t| {
            bch.iter(|| mfbc_parallel::with_threads(t, || black_box(spgemm::<K>(a, b))))
        });
    }
    group.finish();
}

fn graphs() -> (Graph, Graph) {
    // Paper R-MAT at scale 11: 2048 vertices, edge factor 16.
    let g_rmat = rmat(&RmatConfig::paper(11, 16, 1));
    let g_er = uniform(2048, 2048 * 16, false, None, 7);
    (g_rmat, g_er)
}

fn bench_tropical(c: &mut Criterion) {
    let (g_rmat, g_er) = graphs();
    let a = g_rmat.adjacency();
    bench_pair::<TropicalKernel>(c, "spgemm_parallel/rmat_a_x_a", a, a);
    let e = g_er.adjacency();
    bench_pair::<TropicalKernel>(c, "spgemm_parallel/er_a_x_a", e, e);
}

fn bench_multpath(c: &mut Criterion) {
    let (g_rmat, g_er) = graphs();
    let f = frontier(64, g_rmat.n(), 128, 2);
    bench_pair::<BellmanFordKernel>(
        c,
        "spgemm_parallel/rmat_frontier_x_a",
        &f,
        g_rmat.adjacency(),
    );
    let fe = frontier(64, g_er.n(), 128, 3);
    bench_pair::<BellmanFordKernel>(c, "spgemm_parallel/er_frontier_x_a", &fe, g_er.adjacency());
}

criterion_group!(benches, bench_tropical, bench_multpath);
criterion_main!(benches);
