//! Criterion benchmarks of the distributed multiplication plans: one
//! frontier × adjacency product per plan family, measuring host
//! execution time of the simulation (the *modeled* machine times are
//! what the experiment binaries report; this bench tracks the
//! simulator's own efficiency and catches regressions in the MM
//! schedules).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfbc_algebra::kernel::BellmanFordKernel;
use mfbc_algebra::{Dist, Multpath, MultpathMonoid};
use mfbc_graph::gen::{rmat, RmatConfig};
use mfbc_machine::{Machine, MachineSpec};
use mfbc_sparse::{Coo, Csr};
use mfbc_tensor::{canonical_layout, mm_exec, DistMat, MmPlan, Variant1D, Variant2D};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn workload(p: usize) -> (Machine, DistMat<Multpath>, DistMat<Dist>) {
    let g = rmat(&RmatConfig::paper(10, 16, 9));
    let n = g.n();
    let nb = 64;
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut coo = Coo::new(nb, n);
    for s in 0..nb {
        for _ in 0..96 {
            coo.push(s, rng.gen_range(0..n), Multpath::new(Dist::new(3), 1.0));
        }
    }
    let f: Csr<Multpath> = coo.into_csr::<MultpathMonoid>();
    let m = Machine::new(MachineSpec::gemini(p));
    let df = DistMat::from_global(canonical_layout(&m, nb, n), &f);
    let da = DistMat::from_global(canonical_layout(&m, n, n), g.adjacency());
    (m, df, da)
}

fn bench_plans(c: &mut Criterion) {
    let p = 16;
    let (m, df, da) = workload(p);
    let plans = [
        ("1d_a", MmPlan::OneD(Variant1D::A)),
        ("1d_b", MmPlan::OneD(Variant1D::B)),
        ("1d_c", MmPlan::OneD(Variant1D::C)),
        (
            "2d_ab",
            MmPlan::TwoD {
                variant: Variant2D::AB,
                p2: 4,
                p3: 4,
            },
        ),
        (
            "2d_ac",
            MmPlan::TwoD {
                variant: Variant2D::AC,
                p2: 4,
                p3: 4,
            },
        ),
        (
            "3d_b_ac",
            MmPlan::ThreeD {
                split: Variant1D::B,
                inner: Variant2D::AC,
                p1: 4,
                p2: 2,
                p3: 2,
            },
        ),
        (
            "3d_c_ab",
            MmPlan::ThreeD {
                split: Variant1D::C,
                inner: Variant2D::AB,
                p1: 4,
                p2: 2,
                p3: 2,
            },
        ),
    ];
    let mut group = c.benchmark_group("mm_plans_p16");
    group.sample_size(15);
    for (name, plan) in plans {
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| {
                m.reset_meters();
                black_box(mm_exec::<BellmanFordKernel>(&m, plan, &df, &da).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_autotune_overhead(c: &mut Criterion) {
    let (m, df, da) = workload(16);
    let mut group = c.benchmark_group("autotune");
    group.bench_function("plan_search_p16", |b| {
        let st = mfbc_tensor::autotune::stats_for::<BellmanFordKernel>(&df, &da);
        b.iter(|| black_box(mfbc_tensor::best_plan(m.spec(), &st)))
    });
    group.finish();
}

criterion_group!(benches, bench_plans, bench_autotune_overhead);
criterion_main!(benches);
