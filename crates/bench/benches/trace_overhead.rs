//! Sanity benchmark for the tracing fast path: `mm_auto` with tracing
//! disabled must run within a few percent of an uninstrumented build,
//! and installing a no-op recorder must not blow the budget either.
//!
//! The disabled path is a single relaxed atomic load per event site,
//! so the expected delta is noise-level; the `main` below also
//! cross-checks the <2% claim directly with averaged timings (the
//! tolerance is looser in CI to ride out scheduler jitter).

use criterion::{criterion_group, Criterion};
use mfbc_algebra::kernel::BellmanFordKernel;
use mfbc_algebra::{Dist, Multpath, MultpathMonoid};
use mfbc_graph::gen::{rmat, RmatConfig};
use mfbc_machine::{Machine, MachineSpec};
use mfbc_sparse::{Coo, Csr};
use mfbc_tensor::{canonical_layout, mm_auto, DistMat};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;

fn workload(p: usize) -> (Machine, DistMat<Multpath>, DistMat<Dist>) {
    let g = rmat(&RmatConfig::paper(9, 16, 9));
    let n = g.n();
    let nb = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut coo = Coo::new(nb, n);
    for s in 0..nb {
        for _ in 0..64 {
            coo.push(s, rng.gen_range(0..n), Multpath::new(Dist::new(2), 1.0));
        }
    }
    let f: Csr<Multpath> = coo.into_csr::<MultpathMonoid>();
    let m = Machine::new(MachineSpec::gemini(p));
    let df = DistMat::from_global(canonical_layout(&m, nb, n), &f);
    let da = DistMat::from_global(canonical_layout(&m, n, n), g.adjacency());
    (m, df, da)
}

fn run_once(m: &Machine, df: &DistMat<Multpath>, da: &DistMat<Dist>) {
    m.reset_meters();
    black_box(mm_auto::<BellmanFordKernel>(m, df, da).unwrap());
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (m, df, da) = workload(16);
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(20);
    group.bench_function("mm_auto_tracing_disabled", |b| {
        mfbc_trace::uninstall_all();
        b.iter(|| run_once(&m, &df, &da))
    });
    group.bench_function("mm_auto_noop_recorder", |b| {
        mfbc_trace::uninstall_all();
        mfbc_trace::install(Arc::new(mfbc_trace::NoopRecorder::new()));
        b.iter(|| run_once(&m, &df, &da));
        mfbc_trace::uninstall_all();
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);

fn main() {
    benches();
    overhead_check();
}

/// Direct comparison backing the "<2% overhead" acceptance claim:
/// interleaved averaged timings of the disabled path vs. a no-op
/// recorder. Asserts a loose 10% CI bound (host timing jitter easily
/// exceeds 2% on shared runners); prints the measured ratio so the
/// tight bound can be eyeballed on quiet machines.
fn overhead_check() {
    let (m, df, da) = workload(16);
    run_once(&m, &df, &da); // warm up caches and the autotune table

    const ROUNDS: usize = 5;
    const ITERS: u64 = 8;
    let mut disabled = 0.0;
    let mut noop = 0.0;
    for _ in 0..ROUNDS {
        mfbc_trace::uninstall_all();
        disabled += criterion::time_per_call(ITERS, || run_once(&m, &df, &da));
        mfbc_trace::install(Arc::new(mfbc_trace::NoopRecorder::new()));
        noop += criterion::time_per_call(ITERS, || run_once(&m, &df, &da));
        mfbc_trace::uninstall_all();
    }
    let ratio = noop / disabled;
    println!(
        "trace overhead: noop/disabled time ratio = {ratio:.4} (target < 1.02, CI bound 1.10)"
    );
    assert!(
        ratio < 1.10,
        "no-op recorder overhead ratio {ratio:.4} exceeds CI bound"
    );
}
