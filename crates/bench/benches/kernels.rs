//! Criterion microbenchmarks of the sparse kernels: generalized
//! SpGEMM (tropical / multpath / centpath), elementwise combine,
//! transpose, and the COO↔CSR conversions that redistribution leans
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfbc_algebra::kernel::{BellmanFordKernel, BrandesKernel, TropicalKernel};
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::{Centpath, CentpathMonoid, Dist, Multpath, MultpathMonoid};
use mfbc_graph::gen::{rmat, RmatConfig};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::transpose::transpose;
use mfbc_sparse::{spgemm, spgemm_serial, Coo, Csr};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn frontier(nb: usize, n: usize, per_row: usize, seed: u64) -> Csr<Multpath> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(nb, n);
    for s in 0..nb {
        for _ in 0..per_row {
            coo.push(
                s,
                rng.gen_range(0..n),
                Multpath::new(Dist::new(rng.gen_range(1..20)), 1.0),
            );
        }
    }
    coo.into_csr::<MultpathMonoid>()
}

fn bench_spgemm(c: &mut Criterion) {
    let g = rmat(&RmatConfig::paper(11, 16, 1));
    let a = g.adjacency().clone();
    let f = frontier(64, g.n(), 128, 2);

    let mut group = c.benchmark_group("spgemm");
    group.sample_size(20);
    group.bench_function("tropical_serial_a_x_a", |b| {
        b.iter(|| black_box(spgemm_serial::<TropicalKernel>(&a, &a)))
    });
    group.bench_function("multpath_frontier_x_a_serial", |b| {
        b.iter(|| black_box(spgemm_serial::<BellmanFordKernel>(&f, &a)))
    });
    group.bench_function("multpath_frontier_x_a_parallel", |b| {
        b.iter(|| black_box(spgemm::<BellmanFordKernel>(&f, &a)))
    });
    let at = transpose(&a);
    let z = f.map(|_, _, mp| Centpath::new(mp.w, 0.5, 1));
    group.bench_function("centpath_backprop_x_at", |b| {
        b.iter(|| black_box(spgemm_serial::<BrandesKernel>(&z, &at)))
    });
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let f1 = frontier(128, 4096, 256, 3);
    let f2 = frontier(128, 4096, 256, 4);
    let mut group = c.benchmark_group("elementwise");
    group.bench_function("multpath_combine", |b| {
        b.iter(|| black_box(combine::<MultpathMonoid, _>(&f1, &f2)))
    });
    let z1 = f1.map(|_, _, mp| Centpath::new(mp.w, 0.25, 2));
    let z2 = f2.map(|_, _, mp| Centpath::new(mp.w, 0.5, -1));
    group.bench_function("centpath_combine", |b| {
        b.iter(|| black_box(combine::<CentpathMonoid, _>(&z1, &z2)))
    });
    group.finish();
}

fn bench_structure(c: &mut Criterion) {
    let g = rmat(&RmatConfig::paper(12, 8, 5));
    let a = g.adjacency().clone();
    let mut group = c.benchmark_group("structure");
    group.sample_size(20);
    group.bench_function("transpose", |b| b.iter(|| black_box(transpose(&a))));
    group.bench_function("coo_to_csr", |b| {
        b.iter_batched(
            || Coo::from_csr(&a),
            |coo| black_box(coo.into_csr::<MinDist>()),
            criterion::BatchSize::LargeInput,
        )
    });
    for parts in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("row_slice", parts), &parts, |b, &parts| {
            b.iter(|| {
                for r in mfbc_sparse::slice::even_ranges(a.nrows(), parts) {
                    black_box(mfbc_sparse::slice::slice_rows(&a, r));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm, bench_elementwise, bench_structure);
criterion_main!(benches);
