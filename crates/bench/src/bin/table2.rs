//! Regenerates the paper's table2 on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::table2(quick).emit();
}
