//! Regenerates the paper's fig1c on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::fig1c(quick).emit();
}
