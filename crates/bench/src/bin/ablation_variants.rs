//! Regenerates the paper's ablation_variants on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::ablation_variants(quick).emit();
}
