//! Regenerates the paper's fig2b on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::fig2b(quick).emit();
}
