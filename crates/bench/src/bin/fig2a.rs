//! Regenerates the paper's fig2a on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::fig2a(quick).emit();
}
