//! Runs every table/figure reproduction in sequence (the full
//! EXPERIMENTS.md regeneration). `--quick` shrinks all workloads;
//! `--verbose` mirrors trace events (per-experiment timings, CSV save
//! warnings, and any collective/autotune events) to stderr.

use mfbc_bench::experiments as e;
use mfbc_trace::Level;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--verbose") {
        mfbc_trace::install(std::sync::Arc::new(mfbc_trace::StderrRecorder::new()));
    }
    let t0 = std::time::Instant::now();
    for (name, f) in [
        ("table2", e::table2 as fn(bool) -> mfbc_bench::Table),
        ("fig1a", e::fig1a),
        ("fig1b", e::fig1b),
        ("fig1c", e::fig1c),
        ("fig2a", e::fig2a),
        ("fig2b", e::fig2b),
        ("table3", e::table3),
        ("ablation_batch", e::ablation_batch),
        ("ablation_variants", e::ablation_variants),
        ("ablation_amortization", e::ablation_amortization),
        ("apsp_vs_mfbc", e::apsp_vs_mfbc),
    ] {
        let t = std::time::Instant::now();
        f(quick).emit();
        mfbc_trace::log(Level::Info, || {
            format!("{name} took {:.1}s", t.elapsed().as_secs_f64())
        });
    }
    mfbc_trace::log(Level::Info, || {
        format!("all experiments took {:.1}s", t0.elapsed().as_secs_f64())
    });
}
