//! Runs every table/figure reproduction in sequence (the full
//! EXPERIMENTS.md regeneration). `--quick` shrinks all workloads.

use mfbc_bench::experiments as e;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = std::time::Instant::now();
    for (name, f) in [
        ("table2", e::table2 as fn(bool) -> mfbc_bench::Table),
        ("fig1a", e::fig1a),
        ("fig1b", e::fig1b),
        ("fig1c", e::fig1c),
        ("fig2a", e::fig2a),
        ("fig2b", e::fig2b),
        ("table3", e::table3),
        ("ablation_batch", e::ablation_batch),
        ("ablation_variants", e::ablation_variants),
        ("ablation_amortization", e::ablation_amortization),
        ("apsp_vs_mfbc", e::apsp_vs_mfbc),
    ] {
        let t = std::time::Instant::now();
        f(quick).emit();
        eprintln!("[{name} took {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!("[all experiments took {:.1}s]", t0.elapsed().as_secs_f64());
}
