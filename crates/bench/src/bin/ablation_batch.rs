//! Regenerates the paper's ablation_batch on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::ablation_batch(quick).emit();
}
