//! Regenerates the §5.3.2 MFBC-vs-APSP memory/bandwidth comparison.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::apsp_vs_mfbc(quick).emit();
}
