//! Regenerates the paper's table3 on the simulated machine.
//! `--quick` shrinks the workload for smoke runs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mfbc_bench::experiments::table3(quick).emit();
}
