//! Wall-clock comparison of serial vs pool-parallel SpGEMM, written
//! to `results/BENCH_parallel.json`.
//!
//! For each workload (the seeded 2048-vertex paper R-MAT and an
//! Erdős–Rényi graph of matching size) the tropical A·A product is
//! timed under `spgemm_serial` and under the `mfbc-parallel` pool at
//! 1, 2, 4, and 8 workers, after first asserting the pool output is
//! bit-identical to serial (entries AND op counts) at every size.
//!
//! The JSON records the host's available parallelism alongside the
//! timings: thread counts beyond the granted cores oversubscribe a
//! single CPU and cannot speed up, so read speedups relative to
//! `available_parallelism`.

use mfbc_algebra::kernel::TropicalKernel;
use mfbc_algebra::Dist;
use mfbc_graph::gen::{rmat, uniform, RmatConfig};
use mfbc_sparse::{spgemm, spgemm_serial, Csr};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Median-of-`reps` wall time of `f`, in seconds.
fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Workload {
    name: &'static str,
    graph: &'static str,
    serial_s: f64,
    pool_s: Vec<(usize, f64)>,
    identical: bool,
}

fn run_workload(name: &'static str, graph: &'static str, a: &Csr<Dist>, reps: usize) -> Workload {
    let reference = spgemm_serial::<TropicalKernel>(a, a);
    let identical = THREADS.iter().all(|&t| {
        let out = mfbc_parallel::with_threads(t, || spgemm::<TropicalKernel>(a, a));
        out.mat.first_difference(&reference.mat).is_none() && out.ops == reference.ops
    });
    let serial_s = time(reps, || {
        black_box(spgemm_serial::<TropicalKernel>(a, a));
    });
    let pool_s = THREADS
        .iter()
        .map(|&t| {
            let s = time(reps, || {
                mfbc_parallel::with_threads(t, || {
                    black_box(spgemm::<TropicalKernel>(a, a));
                });
            });
            (t, s)
        })
        .collect();
    Workload {
        name,
        graph,
        serial_s,
        pool_s,
        identical,
    }
}

fn json(workloads: &[Workload], cores: usize, reps: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"spgemm_parallel\",");
    let _ = writeln!(out, "  \"available_parallelism\": {cores},");
    let _ = writeln!(out, "  \"reps_per_point\": {reps},");
    let _ = writeln!(
        out,
        "  \"note\": \"median wall time; pool output verified bit-identical to serial \
         (entries and op counts) at every thread count before timing; speedup over serial \
         is bounded by available_parallelism — thread counts beyond the granted cores \
         oversubscribe and only measure scheduling overhead\","
    );
    out.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "      \"graph\": \"{}\",", w.graph);
        let _ = writeln!(out, "      \"bit_identical\": {},", w.identical);
        let _ = writeln!(out, "      \"serial_s\": {:.6},", w.serial_s);
        out.push_str("      \"pool\": [\n");
        for (j, &(t, s)) in w.pool_s.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"threads\": {t}, \"time_s\": {:.6}, \"speedup_vs_serial\": {:.3}}}",
                s,
                w.serial_s / s
            );
            out.push_str(if j + 1 < w.pool_s.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str("    }");
        out.push_str(if i + 1 < workloads.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 9 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Paper R-MAT at scale 11: 2048 vertices, edge factor 16.
    let g_rmat = rmat(&RmatConfig::paper(11, 16, 1));
    let g_er = uniform(2048, 2048 * 16, false, None, 7);

    let workloads = vec![
        run_workload(
            "rmat_tropical_a_x_a",
            "rmat scale=11 ef=16 seed=1 (n=2048)",
            g_rmat.adjacency(),
            reps,
        ),
        run_workload(
            "erdos_renyi_tropical_a_x_a",
            "uniform n=2048 m=32768 seed=7",
            g_er.adjacency(),
            reps,
        ),
    ];

    for w in &workloads {
        assert!(w.identical, "{}: pool output diverged from serial", w.name);
        println!("{} ({})", w.name, w.graph);
        println!("  serial       {:>10.3} ms", w.serial_s * 1e3);
        for &(t, s) in &w.pool_s {
            println!(
                "  pool t={t}     {:>10.3} ms   {:.2}x vs serial",
                s * 1e3,
                w.serial_s / s
            );
        }
    }

    let text = json(&workloads, cores, reps);
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("BENCH_parallel.json");
    match std::fs::write(&path, &text) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("could not save {}: {e}", path.display()),
    }
}
