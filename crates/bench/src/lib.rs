//! Benchmark harness regenerating every table and figure of the MFBC
//! paper's evaluation (§7) on the simulated machine.
//!
//! One binary per experiment (see `src/bin/`); the experiment logic
//! lives in [`experiments`] so the integration tests can run each at
//! a reduced scale. Results print as aligned tables and are saved as
//! CSV under `crates/bench/results/`.
//!
//! Scaling: graphs are the paper's workloads shrunk by the divisors
//! recorded in DESIGN.md/EXPERIMENTS.md, and the simulated per-node
//! memory shrinks by the same factor so memory-gated effects (the
//! paper's "unable to execute" points) reproduce at model scale.

#![deny(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod regress;
pub mod report;
pub mod serveload;

pub use harness::{
    measure_combblas, measure_combblas_best, measure_mfbc, measure_mfbc_best, measure_traced,
    verify_against_trace, BenchSpec, Measurement,
};
pub use report::{trace_summary, Table};
