//! One function per paper table/figure. Each returns a [`Table`]
//! whose rows mirror what the paper plots; binaries in `src/bin/`
//! call these and emit the results. `quick = true` shrinks every
//! workload for tests/CI; `quick = false` is the reported scale
//! (see EXPERIMENTS.md for the exact divisors).

use crate::harness::{
    measure_combblas, measure_combblas_best, measure_mfbc, measure_mfbc_best, BenchSpec,
};
use crate::report::{f2, f3, mib, Table};
use mfbc_core::dist::PlanMode;
use mfbc_graph::gen::{rmat, snap_standin, uniform, uniform_density, RmatConfig, SnapGraph};
use mfbc_graph::prep::{randomize_weights, remove_isolated};
use mfbc_graph::stats::{degree_stats, effective_diameter};
use mfbc_graph::Graph;
use mfbc_tensor::{MmPlan, Variant1D, Variant2D};

/// The node counts benchmarked (powers of four, §7.1: "we benchmark
/// on core counts that are powers of four, as CombBLAS requires
/// square processor grids").
fn node_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4]
    } else {
        vec![1, 4, 16, 64, 256]
    }
}

/// Table-2 stand-in at the benchmark scale. The extra divisor scales
/// all four graphs uniformly; memory divides alongside in
/// [`standin_bench`].
fn standin(which: SnapGraph, quick: bool) -> Graph {
    let extra = if quick { 16 } else { 1 };
    let g = snap_standin(which, which.scale_divisor() * extra, 0xBC);
    remove_isolated(&g)
}

/// The bench spec for a Table-2 stand-in: per-node memory shrinks by
/// the same divisor as the graph, so the paper's memory gates
/// reproduce at model scale.
fn standin_bench(which: SnapGraph, p: usize, quick: bool) -> BenchSpec {
    let extra = if quick { 16 } else { 1 };
    BenchSpec {
        p,
        mem_divisor: which.scale_divisor() * extra,
    }
}

fn cell_best(r: &Result<(crate::harness::Measurement, usize), String>) -> String {
    match r {
        Ok((m, _nb)) => f2(m.mteps_per_node),
        Err(e) => short_oom(e),
    }
}

/// The batch sizes swept per point (§7.1's methodology).
fn batch_ladder(quick: bool) -> Vec<usize> {
    if quick {
        vec![32]
    } else {
        vec![32, 128, 512]
    }
}

fn short_oom(e: &str) -> String {
    if e.starts_with("OOM") {
        "OOM".to_string()
    } else if e.starts_with("n/a") {
        "n/a".to_string()
    } else {
        e.to_string()
    }
}

/// **Table 2** — properties of the analyzed real-world graph
/// stand-ins.
pub fn table2(quick: bool) -> Table {
    let mut t = Table::new(
        "table2_real_graphs",
        &["ID", "name", "directed?", "n", "m", "d(sampled)", "avg deg"],
    );
    for which in [
        SnapGraph::Friendster,
        SnapGraph::Orkut,
        SnapGraph::LiveJournal,
        SnapGraph::Patents,
    ] {
        let g = standin(which, quick);
        let d = effective_diameter(&g, 8, 7);
        let (avg, _) = degree_stats(&g);
        t.push(vec![
            which.id().to_string(),
            which.name().to_string(),
            if which.directed() { "yes" } else { "no" }.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            d.to_string(),
            f2(avg),
        ]);
    }
    t
}

/// **Figure 1(a)** — strong scaling of CTF-MFBC on the real-graph
/// stand-ins: MTEPS/node vs node count.
pub fn fig1a(quick: bool) -> Table {
    let ps = node_counts(quick);
    let mut headers = vec!["graph".to_string()];
    headers.extend(ps.iter().map(|p| format!("p={p}")));
    let mut t = Table {
        name: "fig1a_strong_scaling_mfbc_real".into(),
        headers,
        rows: Vec::new(),
    };
    let graphs = if quick {
        vec![SnapGraph::Orkut, SnapGraph::Patents]
    } else {
        vec![
            SnapGraph::Friendster,
            SnapGraph::Orkut,
            SnapGraph::LiveJournal,
            SnapGraph::Patents,
        ]
    };
    for which in graphs {
        let g = standin(which, quick);
        let mut row = vec![which.id().to_string()];
        for &p in &ps {
            let bench = standin_bench(which, p, quick);
            row.push(cell_best(&measure_mfbc_best(
                &g,
                &bench,
                &batch_ladder(quick),
                PlanMode::Auto,
            )));
        }
        t.push(row);
    }
    t
}

/// **Figure 1(b)** — strong scaling of the CombBLAS-style baseline on
/// the real-graph stand-ins (Friendster included: the paper could not
/// run it at all — the memory gate shows why).
pub fn fig1b(quick: bool) -> Table {
    let ps = node_counts(quick);
    let mut headers = vec!["graph".to_string()];
    headers.extend(ps.iter().map(|p| format!("p={p}")));
    let mut t = Table {
        name: "fig1b_strong_scaling_combblas_real".into(),
        headers,
        rows: Vec::new(),
    };
    let graphs = if quick {
        vec![SnapGraph::Orkut]
    } else {
        vec![
            SnapGraph::Friendster,
            SnapGraph::Orkut,
            SnapGraph::LiveJournal,
            SnapGraph::Patents,
        ]
    };
    for which in graphs {
        let g = standin(which, quick);
        let mut row = vec![which.id().to_string()];
        for &p in &ps {
            let bench = standin_bench(which, p, quick);
            row.push(cell_best(&measure_combblas_best(
                &g,
                &bench,
                &batch_ladder(quick),
            )));
        }
        t.push(row);
    }
    t
}

/// **Figure 1(c)** — strong scaling on R-MAT graphs (`S`, `E` as in
/// §7.2, scaled): unweighted MFBC vs CombBLAS, plus weighted MFBC
/// (weights uniform in `[1, 100]`).
pub fn fig1c(quick: bool) -> Table {
    let s = if quick { 9 } else { 13 };
    let mem_div = 512; // R-MAT S=22 → S=13 is ~512× fewer vertices
    let ps = node_counts(quick);
    let mut headers = vec!["series".to_string()];
    headers.extend(ps.iter().map(|p| format!("p={p}")));
    let mut t = Table {
        name: "fig1c_strong_scaling_rmat".into(),
        headers,
        rows: Vec::new(),
    };
    let efs = if quick { vec![8] } else { vec![8, 128] };
    for e in efs {
        let g = remove_isolated(&rmat(&RmatConfig::paper(s, e, 22)));
        let gw = randomize_weights(&g, 100, 23);
        let mut rows = vec![
            vec![format!("E={e} CTF-MFBC unweighted")],
            vec![format!("E={e} CombBLAS unweighted")],
            vec![format!("E={e} CTF-MFBC weighted")],
        ];
        for &p in &ps {
            let bench = BenchSpec {
                p,
                mem_divisor: mem_div,
            };
            let ladder = batch_ladder(quick);
            rows[0].push(cell_best(&measure_mfbc_best(
                &g,
                &bench,
                &ladder,
                PlanMode::Auto,
            )));
            rows[1].push(cell_best(&measure_combblas_best(&g, &bench, &ladder)));
            rows[2].push(cell_best(&measure_mfbc_best(
                &gw,
                &bench,
                &ladder,
                PlanMode::Auto,
            )));
        }
        for row in rows {
            t.push(row);
        }
    }
    t
}

/// **Figure 2(a)** — edge weak scaling on uniform random graphs:
/// constant `n²/p` and edge percentage `f = 100·m/n²`.
pub fn fig2a(quick: bool) -> Table {
    let ps = node_counts(quick);
    let mut headers = vec!["series".to_string()];
    headers.extend(ps.iter().map(|p| format!("p={p}")));
    let mut t = Table {
        name: "fig2a_edge_weak_scaling".into(),
        headers,
        rows: Vec::new(),
    };
    // The paper's (n₀, f) pairs scaled down 128× in n₀.
    let configs: Vec<(usize, f64)> = if quick {
        vec![(256, 0.5)]
    } else {
        vec![(1024, 0.5), (1024, 0.01), (4096, 0.05), (4096, 0.001)]
    };
    for (n0, f) in configs {
        let mut row_m = vec![format!("n0={n0} f={f}% MFBC")];
        let mut row_c = vec![format!("n0={n0} f={f}% CombBLAS")];
        for &p in &ps {
            // n²/p constant → n = n0·√p.
            let n = (n0 as f64 * (p as f64).sqrt()).round() as usize;
            let g = uniform_density(n, f, None, 1000 + p as u64);
            let bench = BenchSpec {
                p,
                mem_divisor: 128,
            };
            let ladder = batch_ladder(quick);
            row_m.push(cell_best(&measure_mfbc_best(
                &g,
                &bench,
                &ladder,
                PlanMode::Auto,
            )));
            row_c.push(cell_best(&measure_combblas_best(&g, &bench, &ladder)));
        }
        t.push(row_m);
        t.push(row_c);
    }
    t
}

/// **Figure 2(b)** — vertex weak scaling: constant `n/p` and average
/// degree `k = m/n`.
pub fn fig2b(quick: bool) -> Table {
    let ps: Vec<usize> = if quick { vec![1, 4] } else { vec![1, 4, 16] };
    let mut headers = vec!["series".to_string()];
    headers.extend(ps.iter().map(|p| format!("p={p}")));
    let mut t = Table {
        name: "fig2b_vertex_weak_scaling".into(),
        headers,
        rows: Vec::new(),
    };
    let configs: Vec<(usize, usize)> = if quick {
        vec![(256, 16)]
    } else {
        vec![(1024, 128), (1024, 16), (4096, 16), (4096, 2)]
    };
    for (n0, k) in configs {
        let mut row_m = vec![format!("n0={n0} k={k} MFBC")];
        let mut row_c = vec![format!("n0={n0} k={k} CombBLAS")];
        for &p in &ps {
            let n = n0 * p;
            let g = uniform(n, n * k / 2, false, None, 2000 + p as u64);
            let bench = BenchSpec {
                p,
                mem_divisor: 128,
            };
            let ladder = batch_ladder(quick);
            row_m.push(cell_best(&measure_mfbc_best(
                &g,
                &bench,
                &ladder,
                PlanMode::Auto,
            )));
            row_c.push(cell_best(&measure_combblas_best(&g, &bench, &ladder)));
        }
        t.push(row_m);
        t.push(row_c);
    }
    t
}

/// **Table 3** — critical-path communication costs for a single batch
/// (the paper: 4096 cores, batch 512; here: p = 64 simulated nodes,
/// batch 128 at 1/512 graph scale).
pub fn table3(quick: bool) -> Table {
    let mut t = Table::new(
        "table3_critical_path",
        &[
            "graph",
            "code",
            "W (MB)",
            "S (#msgs)",
            "comm (s)",
            "total (s)",
        ],
    );
    let p = if quick { 4 } else { 64 };
    let batch = 128;
    for which in [SnapGraph::Orkut, SnapGraph::LiveJournal, SnapGraph::Patents] {
        let g = standin(which, quick);
        for code in ["CombBLAS", "CTF-MFBC"] {
            let bench = standin_bench(which, p, quick);
            let r = if code == "CombBLAS" {
                measure_combblas(&g, &bench, batch)
            } else {
                measure_mfbc(&g, &bench, batch, PlanMode::Auto)
            };
            match r {
                Ok(m) => t.push(vec![
                    which.name().to_string(),
                    code.to_string(),
                    mib(m.bytes),
                    m.msgs.to_string(),
                    f3(m.comm_s),
                    f3(m.time_s),
                ]),
                Err(e) => t.push(vec![
                    which.name().to_string(),
                    code.to_string(),
                    e.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    t
}

/// **Ablation: batch size** — the time/storage trade-off of `n_b`
/// (§4: "it constitutes a tradeoff between the time and the storage
/// complexity"; §7.1: best performance "usually achieved by the
/// largest batch-size that still fit in memory").
pub fn ablation_batch(quick: bool) -> Table {
    let mut t = Table::new(
        "ablation_batch_size",
        &["n_b", "MTEPS/node", "time (s)", "peak mem/rank (MB)"],
    );
    let which = SnapGraph::Orkut;
    let g = standin(which, quick);
    let p = if quick { 4 } else { 16 };
    let batches = if quick {
        vec![8, 32]
    } else {
        vec![16, 32, 64, 128, 256, 512]
    };
    for nb in batches {
        let bench = standin_bench(which, p, quick);
        let machine = bench.machine();
        let cfg = mfbc_core::dist::MfbcConfig {
            batch_size: Some(nb),
            plan_mode: PlanMode::Auto,
            max_batches: Some(1),
            amortize_adjacency: true,
            sources: None,
            threads: None,
            masked: true,
        };
        match mfbc_core::dist::mfbc_dist(&machine, &g, &cfg) {
            Ok(run) => {
                let rep = run.report;
                let time = rep.critical.total_time();
                let teps = g.m() as f64 * run.sources_processed as f64 / time / 1e6 / p as f64;
                let peak = machine.with_tracker(|tr| tr.max_peak());
                t.push(vec![nb.to_string(), f2(teps), f3(time), mib(peak)]);
            }
            Err(e) => t.push(vec![
                nb.to_string(),
                format!("OOM ({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// **Ablation: decomposition/algorithm variants** — the design-space
/// sweep DESIGN.md calls out: autotuned vs CA-MFBC (several `c`) vs
/// pinned 1D/2D plans on one R-MAT workload.
pub fn ablation_variants(quick: bool) -> Table {
    let mut t = Table::new(
        "ablation_mm_variants",
        &["plan", "MTEPS/node", "comm (s)", "W (MB)", "S (#msgs)"],
    );
    let s = if quick { 9 } else { 12 };
    let g = remove_isolated(&rmat(&RmatConfig::paper(s, 64, 33)));
    let p = 16;
    let bench = BenchSpec {
        p,
        mem_divisor: 1024,
    };
    let modes: Vec<(String, PlanMode)> = vec![
        ("CTF-MFBC (autotuned)".into(), PlanMode::Auto),
        ("CA-MFBC c=1 (2D AC)".into(), PlanMode::Ca { c: 1 }),
        ("CA-MFBC c=4".into(), PlanMode::Ca { c: 4 }),
        ("CA-MFBC c=16".into(), PlanMode::Ca { c: 16 }),
        (
            "2D AB 4x4 (CombBLAS-like)".into(),
            PlanMode::Fixed(MmPlan::TwoD {
                variant: Variant2D::AB,
                p2: 4,
                p3: 4,
            }),
        ),
        (
            "1D A (replicate frontier)".into(),
            PlanMode::Fixed(MmPlan::OneD(Variant1D::A)),
        ),
        (
            "1D B (replicate adjacency)".into(),
            PlanMode::Fixed(MmPlan::OneD(Variant1D::B)),
        ),
    ];
    for (label, mode) in modes {
        match measure_mfbc(&g, &bench, 128, mode) {
            Ok(m) => t.push(vec![
                label,
                f2(m.mteps_per_node),
                f3(m.comm_s),
                mib(m.bytes),
                m.msgs.to_string(),
            ]),
            Err(e) => t.push(vec![label, e, "-".into(), "-".into(), "-".into()]),
        }
    }
    t
}

/// **Ablation: adjacency amortization** — Theorem 5.1 amortizes the
/// adjacency's replication "over (up to d) sparse matrix
/// multiplications and over the n²/cm batches". Compare MFBC with the
/// prepared-adjacency cache against re-paying preparation per product.
pub fn ablation_amortization(quick: bool) -> Table {
    let mut t = Table::new(
        "ablation_amortization",
        &["config", "MTEPS/node", "comm (s)", "W (MB)", "S (#msgs)"],
    );
    let s = if quick { 9 } else { 12 };
    let g = remove_isolated(&rmat(&RmatConfig::paper(s, 64, 41)));
    let p = 16;
    let bench = BenchSpec {
        p,
        mem_divisor: 1024,
    };
    for (label, mode, amortize) in [
        ("CTF-MFBC amortized", PlanMode::Auto, true),
        ("CTF-MFBC unamortized", PlanMode::Auto, false),
        ("CA-MFBC c=4 amortized", PlanMode::Ca { c: 4 }, true),
        ("CA-MFBC c=4 unamortized", PlanMode::Ca { c: 4 }, false),
    ] {
        let machine = bench.machine();
        let cfg = mfbc_core::dist::MfbcConfig {
            batch_size: Some(128),
            plan_mode: mode,
            max_batches: Some(1),
            amortize_adjacency: amortize,
            sources: None,
            threads: None,
            masked: true,
        };
        match mfbc_core::dist::mfbc_dist(&machine, &g, &cfg) {
            Ok(run) => {
                let rep = run.report;
                let time = rep.critical.total_time();
                let teps = g.m() as f64 * run.sources_processed as f64 / time / 1e6 / p as f64;
                t.push(vec![
                    label.to_string(),
                    f2(teps),
                    f3(rep.critical.comm_time),
                    mib(rep.critical.bytes),
                    rep.critical.msgs.to_string(),
                ]);
            }
            Err(e) => t.push(vec![
                label.to_string(),
                format!("OOM ({e})"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// **§5.3.2 comparison** — MFBC vs path-doubling APSP: "The
/// best-known APSP algorithms ... requiring at least n²/p memory,
/// regardless of m. ... MFBC matches this bandwidth cost, while using
/// only O(cm/p) memory." Run both on the same sparse graph and
/// machine; report charged bytes and peak simulated memory.
pub fn apsp_vs_mfbc(quick: bool) -> Table {
    let mut t = Table::new(
        "apsp_vs_mfbc",
        &[
            "algorithm",
            "full BC/APSP time (s)",
            "W (MB)",
            "peak mem/rank (MB)",
        ],
    );
    // A sparse graph where n² >> m: the regime where MFBC's memory
    // advantage matters. (For tiny n the regimes invert — n²/p drops
    // below a replicated adjacency — so quick mode uses fewer ranks
    // and a fixed small batch to stay in the asymptotic regime.)
    let (n, p, batch) = if quick { (384, 4, 32) } else { (2048, 16, 256) };
    let g = remove_isolated(&uniform(n, 4 * n, false, None, 51));
    let spec = mfbc_machine::MachineSpec::gemini(p);

    {
        let machine = mfbc_machine::Machine::new(spec.clone());
        let cfg = mfbc_core::dist::MfbcConfig {
            batch_size: Some(batch.min(g.n().max(1))),
            plan_mode: PlanMode::Auto,
            max_batches: None, // full BC: every source
            amortize_adjacency: true,
            sources: None,
            threads: None,
            masked: true,
        };
        match mfbc_core::dist::mfbc_dist(&machine, &g, &cfg) {
            Ok(run) => {
                assert_eq!(run.sources_processed, g.n());
                let rep = run.report;
                t.push(vec![
                    "CTF-MFBC (all sources)".into(),
                    f3(rep.critical.total_time()),
                    mib(rep.critical.bytes),
                    mib(machine.with_tracker(|tr| tr.max_peak())),
                ]);
            }
            Err(e) => t.push(vec![
                "CTF-MFBC (all sources)".into(),
                format!("OOM ({e})"),
                String::new(),
                String::new(),
            ]),
        }
    }
    {
        let machine = mfbc_machine::Machine::new(spec);
        match mfbc_core::apsp::apsp_dist(&machine, &g) {
            Ok(_) => {
                let rep = machine.report();
                t.push(vec![
                    "path-doubling APSP".into(),
                    f3(rep.critical.total_time()),
                    mib(rep.critical.bytes),
                    mib(machine.with_tracker(|tr| tr.max_peak())),
                ]);
            }
            Err(e) => t.push(vec![
                "path-doubling APSP".into(),
                format!("OOM ({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_quick_has_all_graphs() {
        let t = table2(true);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][0], "frd");
        // Patents must be directed with n, m > 0.
        let cit = &t.rows[3];
        assert_eq!(cit[2], "yes");
        assert!(cit[3].parse::<usize>().unwrap() > 0);
    }

    #[test]
    fn fig1a_quick_produces_numbers() {
        let t = fig1a(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            // At least one machine size must produce a numeric rate.
            assert!(
                row[1..].iter().any(|c| c.parse::<f64>().is_ok()),
                "row {row:?}"
            );
        }
    }

    #[test]
    fn fig1c_quick_weighted_slower_than_unweighted() {
        let t = fig1c(true);
        let unw: f64 = t.rows[0][1].parse().unwrap();
        let w: f64 = t.rows[2][1].parse().unwrap();
        assert!(
            w < unw,
            "weighted ({w}) should be slower than unweighted ({unw})"
        );
    }

    #[test]
    fn fig2_quick_runs() {
        assert_eq!(fig2a(true).rows.len(), 2);
        assert_eq!(fig2b(true).rows.len(), 2);
    }

    #[test]
    fn table3_quick_reports_both_codes() {
        let t = table3(true);
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows.iter().any(|r| r[1] == "CTF-MFBC"));
        assert!(t.rows.iter().any(|r| r[1] == "CombBLAS"));
    }

    #[test]
    fn ablations_quick_run() {
        assert_eq!(ablation_batch(true).rows.len(), 2);
        let t = ablation_variants(true);
        assert_eq!(t.rows.len(), 7);
    }

    #[test]
    fn apsp_uses_more_memory_than_mfbc() {
        let t = apsp_vs_mfbc(true);
        assert_eq!(t.rows.len(), 2);
        let mfbc_mem: f64 = t.rows[0][3].parse().unwrap();
        let apsp_mem: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            apsp_mem > mfbc_mem,
            "APSP ({apsp_mem} MB) must out-consume MFBC ({mfbc_mem} MB)"
        );
    }

    #[test]
    fn amortization_saves_volume() {
        let t = ablation_amortization(true);
        assert_eq!(t.rows.len(), 4);
        // Amortized rows must move fewer bytes than their unamortized
        // twins (column 3 = W in MB).
        for pair in t.rows.chunks(2) {
            let w_am: f64 = pair[0][3].parse().unwrap();
            let w_un: f64 = pair[1][3].parse().unwrap();
            assert!(
                w_am <= w_un,
                "{} moved {w_am} MB vs {} {w_un} MB",
                pair[0][0],
                pair[1][0]
            );
        }
    }
}
