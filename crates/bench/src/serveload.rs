//! Load test for the `mfbc-serve` engine, gated like the modeled
//! regression suite.
//!
//! A seeded mixed request stream (top-k / vertex / full, deadlines
//! from zero through infinite) is driven through the engine in
//! coalesced flush groups — once fault-free and once under a pinned
//! crash+transient schedule. The harness *asserts* the serving
//! contract while it measures:
//!
//! * every admitted request is answered exactly once (never dropped,
//!   fault schedule or not);
//! * every exact-quality response is bit-identical to a one-shot
//!   `mfbc_dist` run on the same machine configuration;
//! * degraded responses carry their tags (`approx_k`/`ci`, stale
//!   version).
//!
//! The report's modeled fields (requests served per modeled second,
//! p99 modeled latency, store version, quality counts) are
//! deterministic and compared bit-exact against `BENCH_serve.json`;
//! wall-clock is band-compared one-sidedly, like `BENCH_mfbc.json`.

use mfbc_core::dist::{mfbc_dist, MfbcConfig};
use mfbc_fault::{FaultPlan, RetryPolicy};
use mfbc_graph::gen::uniform;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_profile::jsonio::{self, Json};
use mfbc_serve::{Admission, Engine, EngineConfig, Payload, Quality, Query, Request};
use std::time::Instant;

/// The pinned fault schedule of the faulted case: one crash early,
/// a transient burst shortly after.
pub const FAULTED_SCHEDULE: &str = "crash:1@2,transient:2@4";

/// Requests per case (mixed queries, mixed deadlines).
pub const REQUESTS: usize = 50;

/// Local SplitMix64 so the stream is pinned independently of any
/// library RNG.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Measured (and contract-checked) outcome of one load case.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeLoadReport {
    /// Case name (`fault-free` / `faulted`).
    pub name: String,
    /// Requests offered.
    pub requests: u64,
    /// Requests past admission.
    pub admitted: u64,
    /// Requests shed at admission (bounded queue).
    pub shed: u64,
    /// Responses by quality rung.
    pub exact: u64,
    /// Sampled-estimator responses.
    pub approx: u64,
    /// Stale-store responses.
    pub stale: u64,
    /// Engine-level retries spent.
    pub retries: u64,
    /// Final committed store version.
    pub store_version: u64,
    /// Engine modeled clock at the end of the run.
    pub modeled_s: f64,
    /// 99th-percentile modeled response latency.
    pub p99_latency_modeled_s: f64,
    /// Responses per modeled second.
    pub rps_modeled: f64,
    /// Wall-clock seconds (band-compared only).
    pub wall_s: f64,
}

/// Runs one load case. `faults` is a `FaultPlan::parse` schedule or
/// `None` for the clean case.
///
/// # Panics
/// Panics if the engine violates the serving contract (a dropped or
/// duplicated response, or an exact response whose bits differ from
/// the one-shot run) — a contract break must fail the bench loudly,
/// not skew its numbers.
pub fn run_load(name: &str, faults: Option<&str>, seed: u64) -> ServeLoadReport {
    let wall_start = Instant::now();
    let g = uniform(64, 320, false, None, 3);
    let cfg = MfbcConfig::default().with_batch_size(8);
    let spec = MachineSpec::test(8);
    let plan = faults.map(|s| FaultPlan::parse(s).expect("pinned schedule parses"));

    // The bit-identity oracle: a one-shot run on an identical machine
    // (same fault schedule — the session replays the same collective
    // sequence, so crash recovery lands identically).
    let oracle_machine = match &plan {
        Some(p) => Machine::with_faults(spec.clone(), p.clone(), RetryPolicy::default()),
        None => Machine::new(spec.clone()),
    };
    let oracle = mfbc_dist(&oracle_machine, &g, &cfg).expect("oracle run completes");
    let oracle_bits: Vec<u64> = oracle.scores.lambda.iter().map(|x| x.to_bits()).collect();

    let machine = match &plan {
        Some(p) => Machine::with_faults(spec.clone(), p.clone(), RetryPolicy::default()),
        None => Machine::new(spec),
    };
    // A queue of 4 against flushes every ~4 submissions: long streaks
    // overflow, so the report exercises load-shedding too.
    let ecfg = EngineConfig {
        max_queue: 4,
        seed,
        // The flight recorder stays on under load: it must never
        // perturb the modeled numbers the baseline pins, and every
        // degraded response below is audited against its journey.
        flight_capacity: 256,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(&machine, g, &cfg, ecfg).expect("engine builds");
    let est_batch = engine.est_batch_modeled_s();

    let mut mix = Mix(seed ^ 0x5e12_7e10_ad00_0001);
    let mut admitted: u64 = 0;
    let mut shed: u64 = 0;
    let mut pending: Vec<u64> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut qualities: Vec<(u64, &'static str)> = Vec::new();
    let (mut exact, mut approx, mut stale, mut retries) = (0u64, 0u64, 0u64, 0u64);

    let mut answer = |engine: &mut Engine, pending: &mut Vec<u64>| {
        for r in engine.drain() {
            let slot = pending
                .iter()
                .position(|&id| id == r.id)
                .expect("response for an id that was admitted and unanswered");
            pending.swap_remove(slot);
            latencies.push(r.latency_modeled_s);
            qualities.push((r.id, r.quality.name()));
            retries += r.retries as u64;
            match r.quality {
                Quality::Exact => {
                    exact += 1;
                    if let Payload::Full(scores) = &r.payload {
                        let got: Vec<u64> = scores.iter().map(|x| x.to_bits()).collect();
                        assert_eq!(
                            got, oracle_bits,
                            "exact response diverged from the one-shot run"
                        );
                    }
                }
                Quality::Approx { k, ci } => {
                    approx += 1;
                    assert!(k > 0 && ci >= 0.0, "approx response must carry its tags");
                }
                Quality::Stale { .. } => stale += 1,
            }
        }
    };

    for i in 0..REQUESTS as u64 {
        let query = match mix.below(4) {
            0 => Query::Full,
            1 => Query::Vertex {
                v: mix.below(64) as usize,
            },
            _ => Query::TopK {
                k: 1 + mix.below(8) as usize,
            },
        };
        // Deadline mix: a third unbounded (funds exact progress), a
        // third about a batch's worth, a third zero (stale probes).
        let deadline_s = match mix.below(3) {
            0 => None,
            1 => Some(est_batch * (0.2 + 0.1 * mix.below(8) as f64)),
            _ => Some(0.0),
        };
        match engine.submit(Request {
            id: i,
            query,
            deadline_s,
        }) {
            Admission::Admitted => {
                admitted += 1;
                pending.push(i);
            }
            Admission::Shed(_) => shed += 1,
        }
        // Flush boundary every few submissions: the coalescing unit.
        if mix.below(4) == 0 {
            answer(&mut engine, &mut pending);
        }
    }
    answer(&mut engine, &mut pending);
    assert!(
        pending.is_empty(),
        "every admitted request must be answered: {pending:?} never were"
    );
    assert_eq!(admitted + shed, REQUESTS as u64);
    assert_eq!(exact + approx + stale, admitted);

    // Every response — and in particular every *degraded* one — must
    // be explainable from its journey record alone: the rung it was
    // served from, the round that answered it, and (when the reason
    // is the budget) the arithmetic that forced the rung.
    let fr = engine.flight().expect("the load harness records flights");
    for &(id, quality) in &qualities {
        let j = fr
            .journeys()
            .find(|j| j.id == id)
            .unwrap_or_else(|| panic!("no journey record for answered id {id}"));
        assert!(j.complete, "id {id}: journey never completed");
        assert_eq!(j.rung, quality, "id {id}: journey rung vs response quality");
        assert!(j.round > 0, "id {id}: no round attribution");
        if j.rung != "exact" {
            assert!(!j.reason.is_empty(), "id {id}: degraded without a reason");
            if j.reason == "budget" {
                assert!(
                    j.spent_s + j.est_batch_s > j.budget_s,
                    "id {id}: budget arithmetic does not explain the degradation \
                     (spent {} + est batch {} within budget {})",
                    j.spent_s,
                    j.est_batch_s,
                    j.budget_s
                );
            }
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p99 = latencies
        .get(((latencies.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(0.0);
    let modeled_s = engine.modeled_s();
    ServeLoadReport {
        name: name.to_string(),
        requests: REQUESTS as u64,
        admitted,
        shed,
        exact,
        approx,
        stale,
        retries,
        store_version: engine.store_version(),
        modeled_s,
        p99_latency_modeled_s: p99,
        rps_modeled: if modeled_s > 0.0 {
            admitted as f64 / modeled_s
        } else {
            0.0
        },
        wall_s: wall_start.elapsed().as_secs_f64(),
    }
}

/// Runs both pinned cases: fault-free, then the crash+transient
/// schedule.
pub fn run_suite(seed: u64) -> Vec<ServeLoadReport> {
    vec![
        run_load("fault-free", None, seed),
        run_load("faulted", Some(FAULTED_SCHEDULE), seed),
    ]
}

/// Serializes reports as the `BENCH_serve.json` baseline document.
pub fn to_json(wall_band: f64, reports: &[ServeLoadReport]) -> String {
    let mut s = format!(
        "{{\n  \"version\": 1,\n  \"wall_band\": {},\n  \"cases\": [\n",
        jsonio::num(wall_band)
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"requests\": {}, \"admitted\": {}, \"shed\": {}, \
             \"exact\": {}, \"approx\": {}, \"stale\": {}, \"retries\": {}, \
             \"store_version\": {}, \"modeled_s\": {}, \"p99_latency_modeled_s\": {}, \
             \"rps_modeled\": {}, \"wall_s\": {}}}",
            jsonio::esc(&r.name),
            r.requests,
            r.admitted,
            r.shed,
            r.exact,
            r.approx,
            r.stale,
            r.retries,
            r.store_version,
            jsonio::num(r.modeled_s),
            jsonio::num(r.p99_latency_modeled_s),
            jsonio::num(r.rps_modeled),
            jsonio::num(r.wall_s),
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Parses a `BENCH_serve.json` baseline.
///
/// # Errors
/// Returns a message naming the malformed field.
pub fn from_json(text: &str) -> Result<(f64, Vec<ServeLoadReport>), String> {
    let v = jsonio::parse(text)?;
    let band = v
        .get("wall_band")
        .and_then(Json::as_f64)
        .ok_or("baseline needs a numeric wall_band")?;
    let mut out = Vec::new();
    for c in v
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("baseline needs a cases array")?
    {
        let field_u = |k: &str| -> Result<u64, String> {
            c.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("case needs numeric {k:?}"))
        };
        let field_f = |k: &str| -> Result<f64, String> {
            c.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("case needs numeric {k:?}"))
        };
        out.push(ServeLoadReport {
            name: c
                .get("name")
                .and_then(Json::as_str)
                .ok_or("case needs a name")?
                .to_string(),
            requests: field_u("requests")?,
            admitted: field_u("admitted")?,
            shed: field_u("shed")?,
            exact: field_u("exact")?,
            approx: field_u("approx")?,
            stale: field_u("stale")?,
            retries: field_u("retries")?,
            store_version: field_u("store_version")?,
            modeled_s: field_f("modeled_s")?,
            p99_latency_modeled_s: field_f("p99_latency_modeled_s")?,
            rps_modeled: field_f("rps_modeled")?,
            wall_s: field_f("wall_s")?,
        });
    }
    Ok((band, out))
}

/// Compares a fresh suite run against the baseline: counts and
/// modeled seconds bit-exact, wall-clock one-sided within the band.
/// Returns human-readable findings; empty means the gate passes.
pub fn compare(
    baseline_band: f64,
    baseline: &[ServeLoadReport],
    current: &[ServeLoadReport],
    band_override: Option<f64>,
) -> Vec<String> {
    let band = band_override.unwrap_or(baseline_band);
    let mut findings = Vec::new();
    if baseline.len() != current.len() {
        findings.push(format!(
            "case count changed: baseline {} vs current {}",
            baseline.len(),
            current.len()
        ));
        return findings;
    }
    for (b, c) in baseline.iter().zip(current) {
        if b.name != c.name {
            findings.push(format!("case renamed: {} vs {}", b.name, c.name));
            continue;
        }
        let counts = [
            ("requests", b.requests, c.requests),
            ("admitted", b.admitted, c.admitted),
            ("shed", b.shed, c.shed),
            ("exact", b.exact, c.exact),
            ("approx", b.approx, c.approx),
            ("stale", b.stale, c.stale),
            ("retries", b.retries, c.retries),
            ("store_version", b.store_version, c.store_version),
        ];
        for (what, want, got) in counts {
            if want != got {
                findings.push(format!("{}: {what} drifted: {want} -> {got}", b.name));
            }
        }
        let modeled = [
            ("modeled_s", b.modeled_s, c.modeled_s),
            (
                "p99_latency_modeled_s",
                b.p99_latency_modeled_s,
                c.p99_latency_modeled_s,
            ),
            ("rps_modeled", b.rps_modeled, c.rps_modeled),
        ];
        for (what, want, got) in modeled {
            if want.to_bits() != got.to_bits() {
                findings.push(format!(
                    "{}: {what} drifted: {want:?} -> {got:?} (modeled values are deterministic)",
                    b.name
                ));
            }
        }
        // Wall-clock: one-sided — only slower-than-band is a finding.
        if c.wall_s > b.wall_s * (1.0 + band) {
            findings.push(format!(
                "{}: wall regression: {:.3}s vs baseline {:.3}s (band {:.0}%)",
                b.name,
                c.wall_s,
                b.wall_s,
                band * 100.0
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_through_json() {
        let reports = vec![ServeLoadReport {
            name: "fault-free".into(),
            requests: 50,
            admitted: 48,
            shed: 2,
            exact: 30,
            approx: 10,
            stale: 8,
            retries: 3,
            store_version: 8,
            modeled_s: 123.456,
            p99_latency_modeled_s: 0.5,
            rps_modeled: 0.38,
            wall_s: 0.9,
        }];
        let (band, parsed) = from_json(&to_json(0.5, &reports)).unwrap();
        assert_eq!(band, 0.5);
        assert_eq!(parsed, reports);
        assert!(compare(band, &reports, &parsed, None).is_empty());
    }

    #[test]
    fn compare_flags_modeled_drift_and_wall_regressions() {
        let base = vec![ServeLoadReport {
            name: "faulted".into(),
            requests: 50,
            admitted: 50,
            shed: 0,
            exact: 50,
            approx: 0,
            stale: 0,
            retries: 1,
            store_version: 8,
            modeled_s: 100.0,
            p99_latency_modeled_s: 1.0,
            rps_modeled: 0.5,
            wall_s: 1.0,
        }];
        let mut drifted = base.clone();
        drifted[0].modeled_s = 100.1;
        drifted[0].exact = 49;
        drifted[0].stale = 1;
        let findings = compare(0.5, &base, &drifted, None);
        assert_eq!(findings.len(), 3, "{findings:?}");
        // Faster wall is fine; slower beyond the band is not.
        let mut faster = base.clone();
        faster[0].wall_s = 0.1;
        assert!(compare(0.5, &base, &faster, None).is_empty());
        let mut slower = base.clone();
        slower[0].wall_s = 2.0;
        assert_eq!(compare(0.5, &base, &slower, None).len(), 1);
    }
}
