//! Measurement harness: runs one algorithm on one graph on one
//! simulated machine and extracts the paper's metrics.

use mfbc_core::combblas::{combblas_bc, BaselineError, CombBlasConfig};
use mfbc_core::dist::{mfbc_dist, MfbcConfig, PlanMode};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec};

/// Machine configuration for a benchmark run.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Simulated node count `p`.
    pub p: usize,
    /// Divisor applied to the Blue-Waters-like 32 GiB per-node memory
    /// (match the graph's down-scaling so memory gates reproduce).
    pub mem_divisor: u64,
}

impl BenchSpec {
    /// A Gemini-class machine with scaled memory.
    pub fn machine(&self) -> Machine {
        let mem = (32u64 << 30) / self.mem_divisor.max(1);
        Machine::new(MachineSpec::gemini(self.p).with_mem_bytes(Some(mem)))
    }
}

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Simulated nodes.
    pub p: usize,
    /// Million traversed edges per second per node — the paper's
    /// headline metric (§7.1: every edge is traversed once per
    /// starting vertex).
    pub mteps_per_node: f64,
    /// Modeled wall-clock seconds (critical-path comm + compute).
    pub time_s: f64,
    /// Modeled communication seconds on the critical path.
    pub comm_s: f64,
    /// Critical-path message count (`S` of Table 3).
    pub msgs: u64,
    /// Critical-path bytes (`W` of Table 3).
    pub bytes: u64,
    /// Sources processed (TEPS numerator uses this).
    pub sources: usize,
    /// Forward+backward frontier iterations.
    pub iterations: usize,
}

fn finish(
    p: usize,
    report: &mfbc_machine::cost::CostReport,
    g: &Graph,
    sources: usize,
    iterations: usize,
) -> Measurement {
    let time_s = report.critical.total_time();
    let traversals = g.m() as f64 * sources as f64;
    Measurement {
        p,
        mteps_per_node: traversals / time_s / 1e6 / p as f64,
        time_s,
        comm_s: report.critical.comm_time,
        msgs: report.critical.msgs,
        bytes: report.critical.bytes,
        sources,
        iterations,
    }
}

/// Runs `f` with a thread-scoped trace recorder and returns its
/// result alongside everything it emitted. The captured records can
/// be summarized ([`crate::report::trace_summary`]) or cross-checked
/// against a [`Measurement`] ([`verify_against_trace`]).
pub fn measure_traced<R>(f: impl FnOnce() -> R) -> (R, Vec<mfbc_trace::TraceRecord>) {
    let rec = std::sync::Arc::new(mfbc_trace::MemoryRecorder::new());
    let out = mfbc_trace::scoped(rec.clone(), f);
    (out, rec.take())
}

/// Cross-checks a harness [`Measurement`] against the trace of the
/// run that produced it.
///
/// The machine model synchronizes each collective's group (raising
/// every participant to the group maximum) *before* adding the
/// collective's cost, so the critical-path `comm_s` can never exceed
/// the plain sum of per-event modeled times. A violation means the
/// accounting and the instrumentation have drifted apart.
///
/// # Errors
/// Returns a description of the discrepancy.
pub fn verify_against_trace(
    m: &Measurement,
    records: &[mfbc_trace::TraceRecord],
) -> Result<(), String> {
    let total = mfbc_trace::total_modeled_comm_s(records);
    // Tolerate f64 summation noise across orderings.
    let slack = 1e-9 + total.abs() * 1e-9;
    if m.comm_s > total + slack {
        return Err(format!(
            "critical-path comm_s {} exceeds the sum of traced collective times {} \
             ({} collective events)",
            m.comm_s,
            total,
            records
                .iter()
                .filter(|r| matches!(r.event, mfbc_trace::TraceEvent::Collective { .. }))
                .count()
        ));
    }
    Ok(())
}

/// Runs one MFBC batch-measurement; `Err` carries a short reason
/// (out of memory), matching the paper's missing data points.
pub fn measure_mfbc(
    g: &Graph,
    bench: &BenchSpec,
    batch: usize,
    mode: PlanMode,
) -> Result<Measurement, String> {
    let machine = bench.machine();
    let cfg = MfbcConfig {
        batch_size: Some(batch.min(g.n().max(1))),
        plan_mode: mode,
        max_batches: Some(1),
        amortize_adjacency: true,
        sources: None,
        threads: None,
        masked: true,
    };
    match mfbc_dist(&machine, g, &cfg) {
        // The run's own report: after a crash recovery the driver
        // finishes on a shrunk machine this handle no longer tracks.
        Ok(run) => Ok(finish(
            run.recovery.final_p,
            &run.report,
            g,
            run.sources_processed,
            run.forward_iterations + run.backward_iterations,
        )),
        Err(e) => Err(format!("OOM ({e})")),
    }
}

/// The paper's methodology (§7.1): benchmark a range of batch sizes
/// and report the best rate ("usually achieved by the largest
/// batch-size that still fit in memory"). Returns the best
/// measurement and its batch size; `Err` only if *no* batch size
/// runs.
pub fn measure_mfbc_best(
    g: &Graph,
    bench: &BenchSpec,
    batches: &[usize],
    mode: PlanMode,
) -> Result<(Measurement, usize), String> {
    let mut best: Option<(Measurement, usize)> = None;
    let mut last_err = "no batch sizes tried".to_string();
    for &nb in batches {
        match measure_mfbc(g, bench, nb, mode.clone()) {
            Ok(m) => {
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| m.mteps_per_node > b.mteps_per_node)
                {
                    best = Some((m, nb));
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

/// Best-over-batch-sizes for the baseline; see [`measure_mfbc_best`].
pub fn measure_combblas_best(
    g: &Graph,
    bench: &BenchSpec,
    batches: &[usize],
) -> Result<(Measurement, usize), String> {
    let mut best: Option<(Measurement, usize)> = None;
    let mut last_err = "no batch sizes tried".to_string();
    for &nb in batches {
        match measure_combblas(g, bench, nb) {
            Ok(m) => {
                if best
                    .as_ref()
                    .is_none_or(|(b, _)| m.mteps_per_node > b.mteps_per_node)
                {
                    best = Some((m, nb));
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

/// Runs one CombBLAS-style baseline measurement.
pub fn measure_combblas(g: &Graph, bench: &BenchSpec, batch: usize) -> Result<Measurement, String> {
    let machine = bench.machine();
    let cfg = CombBlasConfig {
        batch_size: Some(batch.min(g.n().max(1))),
        max_batches: Some(1),
    };
    match combblas_bc(&machine, g, &cfg) {
        Ok(run) => Ok(finish(
            machine.p(),
            &machine.report(),
            g,
            run.sources_processed,
            run.levels,
        )),
        Err(BaselineError::Machine(e)) => Err(format!("OOM ({e})")),
        Err(e) => Err(format!("n/a ({e})")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_graph::gen::uniform;

    #[test]
    fn measurements_have_sane_metrics() {
        let g = uniform(200, 1000, false, None, 1);
        let bench = BenchSpec {
            p: 4,
            mem_divisor: 1,
        };
        let m = measure_mfbc(&g, &bench, 32, PlanMode::Auto).unwrap();
        assert!(m.mteps_per_node > 0.0);
        assert!(m.time_s > 0.0);
        assert!(m.comm_s <= m.time_s);
        assert_eq!(m.sources, 32);
        let c = measure_combblas(&g, &bench, 32).unwrap();
        assert!(c.mteps_per_node > 0.0);
        assert!(c.msgs > 0);
    }

    #[test]
    fn oom_reports_as_error_string() {
        let g = uniform(400, 20_000, false, None, 2);
        let bench = BenchSpec {
            p: 4,
            mem_divisor: 1 << 20, // 32 KiB per rank
        };
        let r = measure_combblas(&g, &bench, 128);
        assert!(r.is_err());
        assert!(r.unwrap_err().starts_with("OOM"));
    }

    #[test]
    fn nonsquare_baseline_grid_is_na() {
        let g = uniform(50, 200, false, None, 3);
        let bench = BenchSpec {
            p: 8,
            mem_divisor: 1,
        };
        let r = measure_combblas(&g, &bench, 16);
        assert!(r.unwrap_err().starts_with("n/a"));
    }
}
