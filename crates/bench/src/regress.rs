//! The pinned regression suite behind `mfbc-cli bench`.
//!
//! A fixed set of experiments — graph, machine, plan mode, batch
//! size, all seeded — each run under a [`mfbc_profile::Profiler`].
//! The modeled outputs (α–β–γ seconds, critical-path counts, memory
//! high-water marks) are deterministic, so the suite's results can be
//! compared bit-exact against the committed `BENCH_mfbc.json`
//! baseline; wall-clock is measured too but only band-compared.

use std::sync::Arc;
use std::time::Instant;

use mfbc_core::dist::{mfbc_dist, MfbcConfig, PlanMode};
use mfbc_graph::gen::{rmat, uniform, RmatConfig};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec, RedistMode};
use mfbc_profile::{BaselineCase, MetricsRegistry, Profile, Profiler};
use mfbc_timeline::{analyze, Analysis, Timeline, TimelineBuilder};

/// Knobs for a suite run. Defaults reproduce the pinned baseline;
/// anything else exists to *provoke* the gate in tests.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Multiplier on the machine's α (message latency). `1.0` for the
    /// real suite; inflate it to simulate a communication regression.
    pub alpha_scale: f64,
    /// Overrides the machine's overlapped-accounting flag. `None`
    /// keeps the preset's default (gemini overlaps); `Some(false)` is
    /// the serialized ablation behind `--no-overlap`.
    pub overlap: Option<bool>,
    /// Overrides the machine's redistribution mode. `None` keeps the
    /// preset's default (gemini picks per-block between broadcast and
    /// pairwise sends).
    pub redist: Option<RedistMode>,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            alpha_scale: 1.0,
            overlap: None,
            redist: None,
        }
    }
}

/// One pinned experiment's full result: the baseline-comparable
/// numbers plus the profile artifacts for export.
pub struct SuiteCaseResult {
    /// Baseline-comparable measurements.
    pub case: BaselineCase,
    /// The sealed profile of the run.
    pub profile: Profile,
    /// The metrics registry the profiler filled (for Prometheus
    /// export).
    pub registry: Arc<MetricsRegistry>,
    /// The causal timeline of the run, replayed from the same trace
    /// stream the profiler observed.
    pub timeline: Timeline,
    /// Critical path, bottleneck table, and superstep attribution of
    /// [`SuiteCaseResult::timeline`].
    pub analysis: Analysis,
}

struct SuiteCase {
    name: &'static str,
    p: usize,
    batch: usize,
    max_batches: usize,
    graph: fn() -> Graph,
}

/// The pinned experiments. Scales are chosen so the whole suite runs
/// in seconds; coverage spans both generators, two machine sizes, and
/// (via the autotuner) more than one SpGEMM plan family.
const SUITE: &[SuiteCase] = &[
    SuiteCase {
        name: "uniform-n256-p4-b64",
        p: 4,
        batch: 64,
        max_batches: 2,
        graph: || uniform(256, 1024, false, None, 1),
    },
    SuiteCase {
        name: "uniform-n192-p8-b32",
        p: 8,
        batch: 32,
        max_batches: 2,
        graph: || uniform(192, 960, false, None, 7),
    },
    SuiteCase {
        name: "rmat-s8-p4-b32",
        p: 4,
        batch: 32,
        max_batches: 2,
        graph: || rmat(&RmatConfig::paper(8, 8, 42)),
    },
];

/// Names of the pinned cases, in suite order.
pub fn suite_case_names() -> Vec<&'static str> {
    SUITE.iter().map(|c| c.name).collect()
}

fn run_case(case: &SuiteCase, opts: &SuiteOptions) -> SuiteCaseResult {
    let mut spec = MachineSpec::gemini(case.p);
    spec.alpha *= opts.alpha_scale;
    if let Some(ovl) = opts.overlap {
        spec.overlap = ovl;
    }
    if let Some(mode) = opts.redist {
        spec.redist = mode;
    }
    let machine = Machine::new(spec);
    let g = (case.graph)();
    let cfg = MfbcConfig {
        batch_size: Some(case.batch),
        plan_mode: PlanMode::Auto,
        max_batches: Some(case.max_batches),
        amortize_adjacency: true,
        sources: None,
        threads: None,
        masked: true,
    };
    let profiler = Arc::new(Profiler::new());
    let builder = Arc::new(TimelineBuilder::new(machine.spec().clone()));
    let started = Instant::now();
    // Scoped sinks nest: the profiler and the timeline builder both
    // observe the one trace stream.
    let run = mfbc_trace::scoped(profiler.clone(), || {
        mfbc_trace::scoped(builder.clone(), || mfbc_dist(&machine, &g, &cfg))
    })
    .expect("pinned suite case must run fault-free");
    let wall_s = started.elapsed().as_secs_f64();
    let profile = profiler.finish(&machine);
    let registry = Arc::clone(profiler.registry());
    let timeline = builder.finish();
    let analysis = analyze(&timeline);
    SuiteCaseResult {
        case: BaselineCase {
            name: case.name.to_string(),
            modeled_comm_s: run.report.critical.comm_time,
            modeled_comp_s: run.report.critical.comp_time,
            msgs: run.report.critical.msgs,
            bytes: run.report.critical.bytes,
            total_ops: run.report.total_ops,
            max_peak_bytes: run.peak_bytes.iter().copied().max().unwrap_or(0),
            critical_comm_share: analysis.comm_share(),
            makespan_s: timeline.makespan_s(),
            wall_s,
        },
        profile,
        registry,
        timeline,
        analysis,
    }
}

/// Runs the whole pinned suite and returns per-case results in suite
/// order.
pub fn run_suite(opts: &SuiteOptions) -> Vec<SuiteCaseResult> {
    SUITE.iter().map(|c| run_case(c, opts)).collect()
}

/// Runs one pinned case by name (`None` in suite order picks the
/// first) — the entry point behind `mfbc-cli analyze`, which needs a
/// single case's timeline without paying for the whole suite.
pub fn run_named_case(name: Option<&str>, opts: &SuiteOptions) -> Option<SuiteCaseResult> {
    let case = match name {
        Some(n) => SUITE.iter().find(|c| c.name == n)?,
        None => SUITE.first()?,
    };
    Some(run_case(case, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_profile::{Baseline, Severity};

    fn cases(results: &[SuiteCaseResult]) -> Vec<BaselineCase> {
        results.iter().map(|r| r.case.clone()).collect()
    }

    #[test]
    fn suite_is_deterministic_in_modeled_metrics() {
        let a = cases(&run_suite(&SuiteOptions::default()));
        let b = cases(&run_suite(&SuiteOptions::default()));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                x.modeled_comm_s.to_bits(),
                y.modeled_comm_s.to_bits(),
                "{}: comm drifted between identical runs",
                x.name
            );
            assert_eq!(x.modeled_comp_s.to_bits(), y.modeled_comp_s.to_bits());
            assert_eq!(x.msgs, y.msgs);
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.total_ops, y.total_ops);
            assert_eq!(x.max_peak_bytes, y.max_peak_bytes);
        }
    }

    #[test]
    fn identical_suite_passes_its_own_baseline() {
        let measured = cases(&run_suite(&SuiteOptions::default()));
        let baseline = Baseline::new(mfbc_profile::DEFAULT_WALL_BAND, measured.clone());
        // Wall-clock differs between the two runs; modeled metrics are
        // bit-equal, and only wall is band-compared, so re-measuring
        // must pass.
        let rerun = cases(&run_suite(&SuiteOptions::default()));
        let findings = baseline.compare(&rerun, Some(100.0));
        assert!(
            findings.is_empty(),
            "unexpected findings: {:?}",
            findings.iter().map(|f| f.describe()).collect::<Vec<_>>()
        );
    }

    /// The acceptance demonstration: a run on a machine with 10× the
    /// message latency must fail the gate against the healthy
    /// baseline, and the failure must be a modeled-comm regression.
    #[test]
    fn inflated_alpha_fails_the_gate() {
        let healthy = cases(&run_suite(&SuiteOptions::default()));
        let baseline = Baseline::new(mfbc_profile::DEFAULT_WALL_BAND, healthy);
        let degraded = cases(&run_suite(&SuiteOptions {
            alpha_scale: 10.0,
            ..SuiteOptions::default()
        }));
        let findings = baseline.compare(&degraded, Some(100.0));
        assert!(!findings.is_empty(), "degraded run slipped past the gate");
        assert!(
            findings
                .iter()
                .any(|f| f.metric == "modeled_comm_s" && f.severity == Severity::Regression),
            "expected a comm-time regression, got: {:?}",
            findings.iter().map(|f| f.describe()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn suite_timelines_sum_bit_exact_and_carry_comm_share() {
        let results = run_suite(&SuiteOptions::default());
        for r in &results {
            assert_eq!(
                r.analysis.path.sum_s().to_bits(),
                r.timeline.makespan_s().to_bits(),
                "{}: critical path does not fold to the makespan",
                r.case.name
            );
            assert_eq!(r.timeline.dropped, 0, "{}: dropped events", r.case.name);
            assert!(
                r.case.critical_comm_share > 0.0 && r.case.critical_comm_share <= 1.0,
                "{}: implausible comm share {}",
                r.case.name,
                r.case.critical_comm_share
            );
            assert_eq!(
                r.case.critical_comm_share.to_bits(),
                r.analysis.comm_share().to_bits()
            );
        }
    }

    /// The mask tentpole's headline claim, pinned on the suite's own
    /// R-MAT case. Masked MFBF (complement-of-`T` forward, structural
    /// backward) must strictly reduce modeled elementary products and
    /// never increase communication relative to the unmasked run, and
    /// the suite's own rmat numbers must land strictly below the
    /// pre-mask (PR-6) baseline on *both* ops and critical-path bytes
    /// — the acceptance gate for the masking work. The comm drop
    /// comes from amortizing the 1D-A column-split B-panel (the one
    /// right-hand move the pre-mask code re-paid every product);
    /// masked and unmasked runs move identical bytes here because the
    /// runs are bit-identical by construction and every column this
    /// graph's masks fully exclude is structurally empty in the
    /// adjacency, so there is nothing extra for the mask to strand.
    #[test]
    fn masking_strictly_reduces_rmat_ops_and_comm() {
        /// `rmat-s8-p4-b32` as pinned by the PR-6 `BENCH_mfbc.json`,
        /// before masked multiplication existed.
        const PRE_MASK_RMAT_OPS: u64 = 846_283;
        const PRE_MASK_RMAT_BYTES: u64 = 378_284;
        let g = rmat(&RmatConfig::paper(8, 8, 42));
        let measure = |masked: bool| {
            let machine = Machine::new(MachineSpec::gemini(4));
            let cfg = MfbcConfig {
                batch_size: Some(32),
                plan_mode: PlanMode::Auto,
                max_batches: Some(2),
                amortize_adjacency: true,
                sources: None,
                threads: None,
                masked,
            };
            let run = mfbc_dist(&machine, &g, &cfg).expect("pinned case must run fault-free");
            (run.report.total_ops, run.report.critical.bytes, run.scores)
        };
        let (mops, mbytes, mscores) = measure(true);
        let (uops, ubytes, uscores) = measure(false);
        assert!(mops < uops, "masked ops {mops} !< unmasked {uops}");
        assert!(
            mbytes <= ubytes,
            "masked bytes {mbytes} > unmasked {ubytes}"
        );
        assert!(
            mops < PRE_MASK_RMAT_OPS,
            "rmat ops {mops} !< pre-mask baseline {PRE_MASK_RMAT_OPS}"
        );
        assert!(
            mbytes < PRE_MASK_RMAT_BYTES,
            "rmat bytes {mbytes} !< pre-mask baseline {PRE_MASK_RMAT_BYTES}"
        );
        for (v, (a, b)) in mscores.lambda.iter().zip(&uscores.lambda).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "λ[{v}]: masking changed a betweenness score"
            );
        }
    }

    /// The overlap tentpole's headline claim, pinned on the suite's
    /// own R-MAT case. Overlapped accounting (the gemini default) must
    /// strictly shrink both the modeled makespan and the critical
    /// path's communication share relative to the serialized ablation
    /// (`overlap: Some(false)`, the `--no-overlap` path), the
    /// overlapped share must land strictly below the PR-7 serialized
    /// pin, and the betweenness scores must be bit-identical — overlap
    /// only moves clocks, never data.
    #[test]
    fn overlap_strictly_shrinks_rmat_makespan_and_comm_share() {
        /// `rmat-s8-p4-b32` comm share as pinned by the PR-7
        /// `BENCH_mfbc.json`, before overlapped accounting existed.
        const SERIALIZED_RMAT_COMM_SHARE: f64 = 0.7325561929245907;
        let rmat_name = Some("rmat-s8-p4-b32");
        let ovl = run_named_case(rmat_name, &SuiteOptions::default()).unwrap();
        let ser = run_named_case(
            rmat_name,
            &SuiteOptions {
                overlap: Some(false),
                ..SuiteOptions::default()
            },
        )
        .unwrap();
        assert!(
            ovl.case.makespan_s < ser.case.makespan_s,
            "overlapped makespan {} !< serialized {}",
            ovl.case.makespan_s,
            ser.case.makespan_s
        );
        assert!(
            ovl.case.critical_comm_share < ser.case.critical_comm_share,
            "overlapped comm share {} !< serialized {}",
            ovl.case.critical_comm_share,
            ser.case.critical_comm_share
        );
        assert!(
            ovl.case.critical_comm_share < SERIALIZED_RMAT_COMM_SHARE,
            "overlapped comm share {} !< PR-7 serialized pin {SERIALIZED_RMAT_COMM_SHARE}",
            ovl.case.critical_comm_share
        );
        // Scores are untouched by the accounting mode.
        let g = rmat(&RmatConfig::paper(8, 8, 42));
        let cfg = MfbcConfig {
            batch_size: Some(32),
            plan_mode: PlanMode::Auto,
            max_batches: Some(2),
            amortize_adjacency: true,
            sources: None,
            threads: None,
            masked: true,
        };
        let score = |spec: MachineSpec| {
            mfbc_dist(&Machine::new(spec), &g, &cfg)
                .expect("pinned case must run fault-free")
                .scores
        };
        let s_ovl = score(MachineSpec::gemini(4));
        let s_ser = score(MachineSpec::gemini(4).with_overlap(false));
        for (v, (a, b)) in s_ovl.lambda.iter().zip(&s_ser.lambda).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "λ[{v}]: overlap changed a betweenness score"
            );
        }
    }

    #[test]
    fn suite_profiles_carry_stream_data() {
        let results = run_suite(&SuiteOptions::default());
        for r in &results {
            assert!(r.profile.events > 0, "{}: empty profile", r.case.name);
            assert!(!r.profile.supersteps.is_empty());
            assert!(!r.profile.plan_mix.is_empty());
            assert_eq!(
                r.profile.max_peak_bytes(),
                r.case.max_peak_bytes,
                "{}: profile and baseline disagree on peak memory",
                r.case.name
            );
        }
    }
}
