//! Result tables: aligned console output plus CSV persistence.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple rectangular results table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment identifier (used as the CSV filename).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(name: &str, headers: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity disagrees with the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// CSV serialization (RFC 4180 quoting: cells containing commas,
    /// quotes, or line breaks are quoted; quotes double).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Parses a table back from [`Table::to_csv`] output (RFC 4180:
    /// quoted cells may contain commas, doubled quotes, and line
    /// breaks). The first record is the header row.
    ///
    /// # Errors
    /// Returns a message for unbalanced quotes, stray data after a
    /// closing quote, or rows whose arity disagrees with the header.
    pub fn from_csv(name: &str, csv: &str) -> Result<Table, String> {
        let mut records: Vec<Vec<String>> = Vec::new();
        let mut record: Vec<String> = Vec::new();
        let mut cell = String::new();
        let mut chars = csv.chars().peekable();
        let mut in_quotes = false;
        // A cell has been started (chars seen or a quote opened), so
        // EOF right after it still flushes an (empty) trailing cell.
        let mut cell_started = false;
        // The cell was quoted and the quote has closed: only a
        // delimiter may follow.
        let mut quote_closed = false;
        while let Some(c) = chars.next() {
            if in_quotes {
                match c {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        cell.push('"');
                    }
                    '"' => {
                        in_quotes = false;
                        quote_closed = true;
                    }
                    c => cell.push(c),
                }
                continue;
            }
            match c {
                ',' => {
                    record.push(std::mem::take(&mut cell));
                    cell_started = false;
                    quote_closed = false;
                }
                '\r' if chars.peek() == Some(&'\n') => {}
                '\n' => {
                    record.push(std::mem::take(&mut cell));
                    cell_started = false;
                    quote_closed = false;
                    records.push(std::mem::take(&mut record));
                }
                _ if quote_closed => {
                    return Err("data after closing quote".to_string());
                }
                '"' if !cell_started => {
                    in_quotes = true;
                    cell_started = true;
                }
                '"' => return Err("stray quote inside unquoted cell".to_string()),
                c => {
                    cell.push(c);
                    cell_started = true;
                }
            }
        }
        if in_quotes {
            return Err("unterminated quoted cell".to_string());
        }
        if cell_started || !cell.is_empty() || !record.is_empty() {
            record.push(cell);
            records.push(record);
        }
        let mut it = records.into_iter();
        let headers = it.next().ok_or("empty csv")?;
        let rows: Vec<Vec<String>> = it.collect();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != headers.len() {
                return Err(format!(
                    "row {} has {} cells, header has {}",
                    i + 1,
                    row.len(),
                    headers.len()
                ));
            }
        }
        Ok(Table {
            name: name.to_string(),
            headers,
            rows,
        })
    }

    /// Prints the table and writes `results/<name>.csv` next to the
    /// bench crate (best-effort; printing always happens).
    pub fn emit(&self) {
        println!("\n== {} ==", self.name);
        println!("{}", self.render());
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.csv", self.name));
            match std::fs::write(&path, self.to_csv()) {
                Ok(()) => println!("[saved {}]", path.display()),
                Err(e) => mfbc_trace::log(mfbc_trace::Level::Warn, || {
                    format!("could not save {}: {e}", path.display())
                }),
            }
        }
    }
}

/// Builds a Table-3-style per-collective summary from a recorded
/// trace: one row per [`mfbc_machine::CollectiveKind`] that fired,
/// with invocation count, bytes moved, charged bytes, message count,
/// and total modeled seconds (sorted by modeled time, descending).
pub fn trace_summary(records: &[mfbc_trace::TraceRecord]) -> Table {
    let mut t = Table::new(
        "trace_summary",
        &[
            "collective",
            "count",
            "bytes",
            "charged",
            "msgs",
            "modeled_s",
        ],
    );
    for k in mfbc_trace::collective_summary(records) {
        t.push(vec![
            k.kind,
            k.count.to_string(),
            k.bytes.to_string(),
            k.bytes_charged.to_string(),
            k.msgs.to_string(),
            format!("{:.6}", k.modeled_s),
        ]);
    }
    t
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

/// Formats an `f64` with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an `f64` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats bytes as mebibytes with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["graph", "MTEPS"]);
        t.push(vec!["orkut".into(), "123.45".into()]);
        t.push(vec!["x".into(), "1.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("graph"));
        assert!(lines[2].contains("orkut"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["x,y".into()]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n");
    }

    #[test]
    fn csv_quotes_newlines_and_quotes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["line\nbreak".into(), "say \"hi\"".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"line\nbreak\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_round_trips_awkward_cells() {
        let mut t = Table::new("plans", &["plan", "note", "t_s"]);
        t.push(vec![
            "cannon(q=4)".into(),
            "fast, stable".into(),
            "1.25".into(),
        ]);
        t.push(vec![
            "2d(AB,4x4)".into(),
            "quote \"inner\" and\nnewline".into(),
            String::new(),
        ]);
        t.push(vec![
            "1d(A)".into(),
            "trailing\r\nCRLF".into(),
            "0.5".into(),
        ]);
        let parsed = Table::from_csv("plans", &t.to_csv()).unwrap();
        assert_eq!(parsed.headers, t.headers);
        // CRLF inside a quoted cell is data, not a record separator —
        // everything round-trips exactly.
        assert_eq!(parsed.rows, t.rows);
    }

    #[test]
    fn csv_round_trip_is_exact_for_writer_output() {
        let mut t = Table::new("x", &["h,1", "h\"2", "h3"]);
        t.push(vec!["a".into(), "b,c".into(), "d\ne".into()]);
        let csv = t.to_csv();
        let parsed = Table::from_csv("x", &csv).unwrap();
        assert_eq!(parsed.headers, t.headers);
        assert_eq!(parsed.rows, t.rows);
        // And the re-serialization is byte-identical.
        assert_eq!(parsed.to_csv(), csv);
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(Table::from_csv("x", "").is_err());
        assert!(Table::from_csv("x", "a,b\n\"unterminated").is_err());
        assert!(Table::from_csv("x", "a\n\"q\"stray\n").is_err());
        assert!(Table::from_csv("x", "a,b\nonly-one\n").is_err());
        assert!(Table::from_csv("x", "a\nmid\"quote\n").is_err());
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn trace_summary_tabulates_collectives() {
        use mfbc_trace::{TraceEvent, TraceRecord};
        let rec = |kind, bytes, modeled_s| TraceRecord {
            ts_us: 0,
            tid: 0,
            event: TraceEvent::Collective {
                kind,
                group: 4,
                ranks: vec![0, 1, 2, 3],
                seq: 0,
                bytes,
                msgs: 2,
                bytes_charged: bytes,
                modeled_s,
            },
        };
        let records = vec![
            rec("allgather", 100, 0.5),
            rec("allgather", 50, 0.25),
            rec("broadcast", 10, 2.0),
        ];
        let t = trace_summary(&records);
        assert_eq!(t.rows.len(), 2);
        // Sorted by modeled seconds, descending.
        assert_eq!(t.rows[0][0], "broadcast");
        assert_eq!(t.rows[1][0], "allgather");
        assert_eq!(t.rows[1][1], "2");
        assert_eq!(t.rows[1][2], "150");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // Rust rounds half-to-even on format
        assert_eq!(mib(1 << 20), "1.00");
    }
}
