//! Result tables: aligned console output plus CSV persistence.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple rectangular results table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment identifier (used as the CSV filename).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells, one `Vec` per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(name: &str, headers: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity disagrees with the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// CSV serialization.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv` next to the
    /// bench crate (best-effort; printing always happens).
    pub fn emit(&self) {
        println!("\n== {} ==", self.name);
        println!("{}", self.render());
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.csv", self.name));
            match std::fs::write(&path, self.to_csv()) {
                Ok(()) => println!("[saved {}]", path.display()),
                Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
            }
        }
    }
}

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

/// Formats an `f64` with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an `f64` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats bytes as mebibytes with 2 decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["graph", "MTEPS"]);
        t.push(vec!["orkut".into(), "123.45".into()]);
        t.push(vec!["x".into(), "1.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("graph"));
        assert!(lines[2].contains("orkut"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["x,y".into()]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n");
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // Rust rounds half-to-even on format
        assert_eq!(mib(1 << 20), "1.00");
    }
}
