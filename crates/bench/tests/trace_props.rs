//! Property test tying the tracing subsystem to the harness metrics:
//! the critical-path communication time reported by a measurement can
//! never exceed the plain sum of modeled times over the collective
//! events traced during that same run (§7.4 accounting takes a
//! group-max before adding each collective's cost, so the per-event
//! sum is an upper bound on any single rank's accumulated time).

use mfbc_bench::{measure_mfbc, measure_traced, verify_against_trace, BenchSpec};
use mfbc_core::dist::PlanMode;
use mfbc_graph::gen::uniform;
use mfbc_trace::TraceEvent;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn traced_comm_dominates_critical_path(
        n in 40usize..220,
        edge_factor in 2usize..8,
        p in prop_oneof![Just(1usize), Just(2), Just(4), Just(9), Just(16)],
        batch in 4usize..48,
        seed in 0u64..1000,
    ) {
        let g = uniform(n, n * edge_factor, false, None, seed);
        let bench = BenchSpec { p, mem_divisor: 1 };
        let (result, records) = measure_traced(|| measure_mfbc(&g, &bench, batch, PlanMode::Auto));
        let m = match result {
            Ok(m) => m,
            Err(e) => {
                // OOM points are legitimate outcomes, but this spec
                // has full memory — treat any failure as a bug.
                prop_assert!(false, "measure_mfbc failed unexpectedly: {e}");
                unreachable!()
            }
        };
        // The run must actually have been traced.
        let collectives = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Collective { .. }))
            .count();
        if p > 1 {
            prop_assert!(collectives > 0, "no collective events traced for p={p}");
        }
        prop_assert!(
            verify_against_trace(&m, &records).is_ok(),
            "comm_s {} vs traced total {} ({} collectives)",
            m.comm_s,
            mfbc_trace::total_modeled_comm_s(&records),
            collectives
        );
    }
}

#[test]
fn verify_against_trace_rejects_drift() {
    let g = uniform(120, 600, false, None, 5);
    let bench = BenchSpec {
        p: 4,
        mem_divisor: 1,
    };
    let (result, records) = measure_traced(|| measure_mfbc(&g, &bench, 16, PlanMode::Auto));
    let mut m = result.unwrap();
    assert!(verify_against_trace(&m, &records).is_ok());
    // Inflate the reported critical path past the traced sum: the
    // cross-check must flag the discrepancy.
    m.comm_s = mfbc_trace::total_modeled_comm_s(&records) * 2.0 + 1.0;
    assert!(verify_against_trace(&m, &records).is_err());
}
