//! Property tests of the graph layer: constructor invariants,
//! generator guarantees, preprocessing correctness, and I/O
//! round-trips.

use mfbc_algebra::Dist;
use mfbc_graph::gen::{rmat, uniform, RmatConfig};
use mfbc_graph::io::{read_edge_list, write_edge_list};
use mfbc_graph::prep::{random_relabel, randomize_weights, remove_isolated, unweighted_copy};
use mfbc_graph::stats::{bfs_hops, degree_stats, isolated_vertices};
use mfbc_graph::Graph;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (2..max_n).prop_flat_map(move |n| (Just(n), vec((0..n, 0..n, 1u64..50), 0..4 * n)))
}

proptest! {
    /// The adjacency matrix of an undirected graph is symmetric with
    /// equal weights both ways.
    #[test]
    fn undirected_adjacency_is_symmetric((n, edges) in arb_edges(24)) {
        let g = Graph::new(n, false, edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))));
        for (u, v, w) in g.adjacency().iter() {
            prop_assert_eq!(g.adjacency().get(v, u), Some(w), "asymmetric at ({}, {})", u, v);
        }
    }

    /// No self-loops survive construction, and every stored weight is
    /// finite and positive.
    #[test]
    fn construction_invariants((n, edges) in arb_edges(24), directed in any::<bool>()) {
        let g = Graph::new(n, directed, edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))));
        for (u, v, w) in g.adjacency().iter() {
            prop_assert_ne!(u, v, "self-loop stored");
            prop_assert!(w.is_finite() && *w > Dist::ZERO);
        }
    }

    /// Relabeling is an isomorphism: degree multiset and BFS
    /// reachable-set sizes are invariant.
    #[test]
    fn relabel_is_isomorphism((n, edges) in arb_edges(20), seed in 0u64..50) {
        let g = Graph::new(n, false, edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))));
        let r = random_relabel(&g, seed);
        prop_assert_eq!(r.n(), g.n());
        prop_assert_eq!(r.m(), g.m());
        let mut dg: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
        let mut dr: Vec<usize> = (0..r.n()).map(|v| r.degree(v)).collect();
        dg.sort_unstable();
        dr.sort_unstable();
        prop_assert_eq!(dg, dr);
        let mut cg: Vec<usize> = (0..g.n())
            .map(|v| bfs_hops(&g, v).iter().filter(|&&d| d != usize::MAX).count())
            .collect();
        let mut cr: Vec<usize> = (0..r.n())
            .map(|v| bfs_hops(&r, v).iter().filter(|&&d| d != usize::MAX).count())
            .collect();
        cg.sort_unstable();
        cr.sort_unstable();
        prop_assert_eq!(cg, cr);
    }

    /// After isolated-vertex removal no vertex is isolated, and the
    /// arc count is unchanged.
    #[test]
    fn remove_isolated_is_complete((n, edges) in arb_edges(20)) {
        let g = Graph::new(n, true, edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))));
        let c = remove_isolated(&g);
        prop_assert_eq!(c.m(), g.m());
        prop_assert!(isolated_vertices(&c).is_empty());
    }

    /// Weight randomization/stripping preserve structure exactly.
    #[test]
    fn weight_transforms_preserve_structure((n, edges) in arb_edges(20), wmax in 1u64..100) {
        let g = Graph::new(n, false, edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))));
        let w = randomize_weights(&g, wmax, 7);
        let u = unweighted_copy(&w);
        prop_assert_eq!(w.m(), g.m());
        prop_assert_eq!(u.m(), g.m());
        prop_assert!(u.is_unit_weighted());
        for (a, b, _) in g.adjacency().iter() {
            prop_assert!(w.adjacency().get(a, b).is_some());
        }
    }

    /// Edge-list round-trip preserves structural invariants.
    #[test]
    fn io_round_trip((n, edges) in arb_edges(16), directed in any::<bool>()) {
        let g = Graph::new(n, directed, edges.iter().map(|&(u, v, w)| (u, v, Dist::new(w))));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), directed).unwrap();
        prop_assert_eq!(back.m(), g.m());
        let (avg_g, max_g) = degree_stats(&g);
        let isolated = isolated_vertices(&g).len();
        // The reader compacts labels, dropping isolated vertices.
        prop_assert_eq!(back.n(), g.n() - isolated);
        if g.m() > 0 {
            let (avg_b, max_b) = degree_stats(&back);
            prop_assert_eq!(max_g, max_b);
            // Average degree shifts only by the dropped isolated
            // vertices.
            let expected_avg = avg_g * g.n() as f64 / back.n() as f64;
            prop_assert!((avg_b - expected_avg).abs() < 1e-9);
        }
    }
}

#[test]
fn generators_have_no_isolated_surprises() {
    // R-MAT may generate isolated vertices (the paper removes them);
    // uniform graphs at reasonable density rarely do. Either way the
    // preprocessing must make BC well-defined.
    let g = remove_isolated(&rmat(&RmatConfig::paper(9, 4, 3)));
    assert!(isolated_vertices(&g).is_empty());
    let u = uniform(500, 2000, false, None, 4);
    let c = remove_isolated(&u);
    assert!(isolated_vertices(&c).is_empty());
}
