//! R-MAT recursive power-law graph generator (Chakrabarti, Zhan,
//! Faloutsos 2004) — the paper's synthetic strong-scaling workload
//! (§7.2: "R-MAT graphs, for both of which log₂(n) ≈ S = 22, while
//! the average degree is controlled by k ≈ E ∈ {8, 128}").

use crate::graph::Graph;
use crate::prep::random_relabel;
use mfbc_algebra::Dist;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// R-MAT parameters.
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// Scale: `n = 2^scale` vertices.
    pub scale: u32,
    /// Edge factor: `edge_factor · n` edge samples.
    pub edge_factor: usize,
    /// Quadrant probabilities `(a, b, c)`; `d = 1 − a − b − c`.
    /// Graph500 defaults `(0.57, 0.19, 0.19)`.
    pub probs: (f64, f64, f64),
    /// Whether to produce a directed graph.
    pub directed: bool,
    /// Random integer weights drawn uniformly from `[1, w]`; `None`
    /// for unweighted (the paper's weighted runs use `[1, 100]`).
    pub weights: Option<u64>,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl RmatConfig {
    /// The paper's R-MAT setup: scale `s`, average degree `e`,
    /// Graph500 skew, undirected, unweighted.
    pub fn paper(s: u32, e: usize, seed: u64) -> RmatConfig {
        RmatConfig {
            scale: s,
            edge_factor: e,
            probs: (0.57, 0.19, 0.19),
            directed: false,
            weights: None,
            seed,
        }
    }

    /// Same with random weights in `[1, 100]` (§7.2 weighted runs).
    pub fn paper_weighted(s: u32, e: usize, seed: u64) -> RmatConfig {
        RmatConfig {
            weights: Some(100),
            ..RmatConfig::paper(s, e, seed)
        }
    }
}

/// Generates an R-MAT graph. Vertex labels are randomly permuted
/// afterwards so that block decompositions are load-balanced (the
/// §5.2 randomized-order assumption).
pub fn rmat(cfg: &RmatConfig) -> Graph {
    let n = 1usize << cfg.scale;
    let target = cfg.edge_factor * n;
    let (a, b, c) = cfg.probs;
    let d = 1.0 - a - b - c;
    assert!(d >= 0.0, "quadrant probabilities exceed 1");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    let mut edges = Vec::with_capacity(target);
    for _ in 0..target {
        let (mut lo_i, mut hi_i) = (0usize, n);
        let (mut lo_j, mut hi_j) = (0usize, n);
        while hi_i - lo_i > 1 {
            // Per-level probability noise keeps the degree
            // distribution from collapsing onto exact powers.
            let r: f64 = rng.gen();
            let (top, left) = if r < a {
                (true, true)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (false, false)
            };
            let mid_i = (lo_i + hi_i) / 2;
            let mid_j = (lo_j + hi_j) / 2;
            if top {
                hi_i = mid_i;
            } else {
                lo_i = mid_i;
            }
            if left {
                hi_j = mid_j;
            } else {
                lo_j = mid_j;
            }
        }
        if lo_i != lo_j {
            let w = match cfg.weights {
                Some(wmax) => Dist::new(rng.gen_range(1..=wmax)),
                None => Dist::ONE,
            };
            edges.push((lo_i, lo_j, w));
        }
    }

    let g = Graph::new(n, cfg.directed, edges);
    random_relabel(&g, cfg.seed ^ 0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_roughly_target_edges() {
        let g = rmat(&RmatConfig::paper(10, 8, 1));
        assert_eq!(g.n(), 1024);
        // Duplicates/self-loops shave some edges off; undirected
        // doubling adds arcs.
        let arcs = g.m();
        assert!(arcs > 8 * 1024, "too few arcs: {arcs}");
        assert!(arcs <= 2 * 8 * 1024, "too many arcs: {arcs}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rmat(&RmatConfig::paper(8, 4, 42));
        let b = rmat(&RmatConfig::paper(8, 4, 42));
        assert_eq!(a.adjacency(), b.adjacency());
        let c = rmat(&RmatConfig::paper(8, 4, 43));
        assert_ne!(a.adjacency(), c.adjacency());
    }

    #[test]
    fn skew_produces_heavy_tail() {
        let g = rmat(&RmatConfig::paper(12, 16, 7));
        let max_deg = (0..g.n()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            (max_deg as f64) > 8.0 * avg,
            "power-law tail missing: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn weighted_weights_in_range() {
        let g = rmat(&RmatConfig::paper_weighted(8, 4, 11));
        assert!(!g.is_unit_weighted());
        for (_, _, w) in g.adjacency().iter() {
            let raw = w.raw();
            assert!((1..=100).contains(&raw), "weight {raw} out of range");
        }
    }

    #[test]
    fn directed_variant() {
        let cfg = RmatConfig {
            directed: true,
            ..RmatConfig::paper(8, 4, 5)
        };
        let g = rmat(&cfg);
        assert!(g.directed());
    }
}
