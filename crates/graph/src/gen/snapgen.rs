//! Stand-ins for the SNAP real-world graphs of Table 2.
//!
//! The paper benchmarks four SNAP datasets (Friendster, Orkut,
//! LiveJournal, Patents). Those datasets cannot be bundled with this
//! repository, so each is replaced by a deterministic synthetic
//! generator tuned to reproduce the *features the evaluation
//! attributes performance to*: vertex/edge counts (scaled down by
//! [`SnapGraph::scale_divisor`]), average degree, directedness, and
//! diameter regime. Table 2 for reference:
//!
//! | ID  | graph        | directed | n     | m     | d  | d̄  |
//! |-----|--------------|----------|-------|-------|----|-----|
//! | frd | Friendster   | no       | 65.6M | 1.8B  | 32 | 5.8 |
//! | ork | Orkut        | no       | 3.1M  | 117M  | 9  | 4.8 |
//! | ljm | LiveJournal  | yes      | 4.8M  | 70M   | 16 | 6.5 |
//! | cit | Patents      | yes      | 3.8M  | 16.5M | 22 | 9.4 |
//!
//! Social networks (frd/ork/ljm) are modeled as R-MAT graphs with
//! Graph500 skew — R-MAT was designed to mimic such networks and
//! yields their low effective diameter and heavy-tailed degrees. The
//! patent citation graph is modeled as a time-layered DAG: vertices
//! are ordered by "filing date" and cite only earlier vertices within
//! a bounded window, which reproduces its defining features — acyclic
//! directedness, modest average degree, and a *large* diameter
//! (shortest paths must climb through time layers).

use crate::gen::rmat::{rmat, RmatConfig};
use crate::graph::Graph;
use crate::prep::random_relabel;
use mfbc_algebra::Dist;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The four Table-2 graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapGraph {
    /// Friendster: the largest graph — the paper's 2D baseline fails
    /// on it at small node counts.
    Friendster,
    /// Orkut: dense, low diameter — MFBC's best case.
    Orkut,
    /// LiveJournal: directed membership graph, moderate diameter.
    LiveJournal,
    /// Patents: directed citation graph, largest diameter — the
    /// baseline's best case.
    Patents,
}

impl SnapGraph {
    /// Table-2 identifiers.
    pub fn id(self) -> &'static str {
        match self {
            SnapGraph::Friendster => "frd",
            SnapGraph::Orkut => "ork",
            SnapGraph::LiveJournal => "ljm",
            SnapGraph::Patents => "cit",
        }
    }

    /// Full names as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            SnapGraph::Friendster => "Friendster",
            SnapGraph::Orkut => "Orkut social network",
            SnapGraph::LiveJournal => "LiveJournal membership",
            SnapGraph::Patents => "Patent citation graph",
        }
    }

    /// Whether the original is directed.
    pub fn directed(self) -> bool {
        matches!(self, SnapGraph::LiveJournal | SnapGraph::Patents)
    }

    /// Original `(n, m)` from Table 2.
    pub fn full_size(self) -> (u64, u64) {
        match self {
            SnapGraph::Friendster => (65_600_000, 1_800_000_000),
            SnapGraph::Orkut => (3_100_000, 117_000_000),
            SnapGraph::LiveJournal => (4_800_000, 70_000_000),
            SnapGraph::Patents => (3_800_000, 16_500_000),
        }
    }

    /// Default down-scaling divisor used by the benchmark harness
    /// (recorded in EXPERIMENTS.md): vertex counts shrink by this,
    /// average degree is preserved.
    pub fn scale_divisor(self) -> u64 {
        match self {
            SnapGraph::Friendster => 4096,
            _ => 512,
        }
    }
}

/// Generates the stand-in at `1/divisor` of the original vertex
/// count (average degree preserved).
pub fn snap_standin(which: SnapGraph, divisor: u64, seed: u64) -> Graph {
    let (n_full, m_full) = which.full_size();
    let n = (n_full / divisor).max(64) as usize;
    let m = (m_full / divisor).max(256) as usize;
    match which {
        SnapGraph::Friendster | SnapGraph::Orkut | SnapGraph::LiveJournal => {
            // R-MAT with the average degree of the original; scale
            // chosen as the next power of two ≥ n, then edges thinned
            // by the generator's dedup.
            let scale = usize::BITS - (n - 1).leading_zeros();
            let n_pow = 1usize << scale;
            let edge_factor = (m / n_pow).max(1);
            let cfg = RmatConfig {
                scale,
                edge_factor,
                probs: (0.57, 0.19, 0.19),
                directed: which.directed(),
                weights: None,
                seed,
            };
            rmat(&cfg)
        }
        SnapGraph::Patents => patents_standin(n, m, seed),
    }
}

/// Time-layered citation DAG: vertex `v` cites `deg ≈ m/n` earlier
/// vertices drawn from a window of the `W` most recent predecessors
/// (plus occasional long-range citations), giving a directed acyclic
/// graph whose diameter grows with `n / W`.
fn patents_standin(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let deg = (m / n).max(1);
    // Window sized for a diameter in the tens regardless of scale:
    // paths shorten by ~W per hop, so d ≈ n / W ≈ 24.
    let window = (n / 24).max(4);
    let mut edges = Vec::with_capacity(n * deg);
    for v in 1..n {
        for _ in 0..deg {
            let lo = v.saturating_sub(window);
            // 10% long-range citations reach all the way back,
            // matching citation networks' occasional classic cites.
            let u = if rng.gen_bool(0.1) || lo == 0 {
                rng.gen_range(0..v)
            } else {
                rng.gen_range(lo..v)
            };
            edges.push((v, u, Dist::ONE));
        }
    }
    let g = Graph::new(n, true, edges);
    random_relabel(&g, seed ^ 0xc17e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::effective_diameter;

    #[test]
    fn standins_match_directedness_and_degree() {
        for which in [SnapGraph::Orkut, SnapGraph::LiveJournal, SnapGraph::Patents] {
            let g = snap_standin(which, 2048, 1);
            assert_eq!(g.directed(), which.directed(), "{which:?}");
            let (nf, mf) = which.full_size();
            let target_deg = mf as f64 / nf as f64;
            let got = g.m() as f64 / g.n() as f64 / if which.directed() { 1.0 } else { 2.0 };
            assert!(
                got > target_deg * 0.3 && got < target_deg * 2.5,
                "{which:?}: degree {got} vs target {target_deg}"
            );
        }
    }

    #[test]
    fn patents_has_larger_diameter_than_orkut() {
        let cit = snap_standin(SnapGraph::Patents, 2048, 3);
        let ork = snap_standin(SnapGraph::Orkut, 2048, 3);
        let d_cit = effective_diameter(&cit, 8, 7);
        let d_ork = effective_diameter(&ork, 8, 7);
        assert!(
            d_cit > d_ork,
            "patents d={d_cit} should exceed orkut d={d_ork}"
        );
    }

    #[test]
    fn deterministic_standins() {
        let a = snap_standin(SnapGraph::LiveJournal, 4096, 5);
        let b = snap_standin(SnapGraph::LiveJournal, 4096, 5);
        assert_eq!(a.adjacency(), b.adjacency());
    }

    #[test]
    fn table2_metadata() {
        assert_eq!(SnapGraph::Friendster.id(), "frd");
        assert!(SnapGraph::Patents.directed());
        assert!(!SnapGraph::Orkut.directed());
        let (n, m) = SnapGraph::Orkut.full_size();
        assert!(m / n > 30); // Orkut is the densest per-vertex
    }
}
