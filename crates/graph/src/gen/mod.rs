//! Graph generators: R-MAT, Erdős–Rényi uniform, and the Table-2
//! real-graph stand-ins.

pub mod rmat;
pub mod snapgen;
pub mod uniform;

pub use rmat::{rmat, RmatConfig};
pub use snapgen::{snap_standin, SnapGraph};
pub use uniform::{uniform, uniform_density};
