//! Erdős–Rényi uniform random graphs `G(n, m)` — the paper's
//! weak-scaling workload (§7.3: "uniform random graphs, in which all
//! nodes have the same expected vertex degree, and every edge exists
//! with a uniform probability").

use crate::graph::Graph;
use mfbc_algebra::Dist;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates a uniform random graph with `n` vertices and about
/// `m_target` undirected edges (duplicates and self-loops are
/// resampled away up to a bounded number of attempts), optionally
/// weighted uniformly in `[1, wmax]`.
pub fn uniform(
    n: usize,
    m_target: usize,
    directed: bool,
    weights: Option<u64>,
    seed: u64,
) -> Graph {
    assert!(n >= 2, "uniform graph needs at least two vertices");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m_target);
    for _ in 0..m_target {
        // Rejection-sample a non-loop; duplicates are merged by the
        // Graph constructor (expected duplicate fraction is tiny for
        // the sparse regimes benchmarked).
        let mut u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        let mut tries = 0;
        while u == v && tries < 32 {
            u = rng.gen_range(0..n);
            v = rng.gen_range(0..n);
            tries += 1;
        }
        if u == v {
            continue;
        }
        let w = match weights {
            Some(wmax) => Dist::new(rng.gen_range(1..=wmax)),
            None => Dist::ONE,
        };
        edges.push((u, v, w));
    }
    Graph::new(n, directed, edges)
}

/// Generates a uniform graph from an edge *density*: the paper's
/// "edge percentage" `f = 100·m/n²` of Fig. 2(a). `f` is in percent.
pub fn uniform_density(n: usize, f_percent: f64, weights: Option<u64>, seed: u64) -> Graph {
    let m = ((f_percent / 100.0) * (n as f64) * (n as f64) / 2.0).round() as usize;
    uniform(n, m, false, weights, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_near_target() {
        let g = uniform(1000, 5000, false, None, 1);
        let e = g.edge_count();
        assert!(e > 4800 && e <= 5000, "edge count {e} off target");
    }

    #[test]
    fn density_maps_to_edges() {
        // f = 1% of n² = 0.01·n²; undirected halves it.
        let n = 500;
        let g = uniform_density(n, 1.0, None, 3);
        let expect = 0.01 * (n as f64) * (n as f64) / 2.0;
        let e = g.edge_count() as f64;
        assert!((e - expect).abs() / expect < 0.05, "e={e}, expect≈{expect}");
    }

    #[test]
    fn deterministic() {
        let a = uniform(100, 300, true, Some(100), 9);
        let b = uniform(100, 300, true, Some(100), 9);
        assert_eq!(a.adjacency(), b.adjacency());
    }

    #[test]
    fn degrees_are_balanced() {
        let g = uniform(2000, 20_000, false, None, 5);
        let max_deg = (0..g.n()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        // Uniform graphs have no heavy tail: the max degree stays
        // within a small factor of the mean (Chernoff).
        assert!((max_deg as f64) < 3.0 * avg, "max {max_deg}, avg {avg}");
    }
}
