//! Graph preprocessing, mirroring §7.1: isolated-vertex removal,
//! random relabeling (the load-balance prerequisite of §5.2), and
//! weight assignment.

use crate::graph::Graph;
use crate::stats::isolated_vertices;
use mfbc_algebra::Dist;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Removes completely disconnected vertices and compacts labels
/// ("Our CTF-MFBC code preprocessed all graphs to remove completely
/// disconnected vertices", §7.1). Returns the compacted graph.
pub fn remove_isolated(g: &Graph) -> Graph {
    let isolated = isolated_vertices(g);
    if isolated.is_empty() {
        return g.clone();
    }
    let mut keep = vec![true; g.n()];
    for v in isolated {
        keep[v] = false;
    }
    let mut newid = vec![usize::MAX; g.n()];
    let mut next = 0;
    for v in 0..g.n() {
        if keep[v] {
            newid[v] = next;
            next += 1;
        }
    }
    let edges = directed_arcs(g)
        .into_iter()
        .map(|(u, v, w)| (newid[u], newid[v], w));
    Graph::new(next, true, edges).with_directedness(g.directed())
}

/// Applies a uniformly random permutation to vertex labels. Keeps
/// blocks of any even decomposition balanced in expectation — the
/// balls-into-bins assumption the communication analysis rests on
/// (§5.2).
pub fn random_relabel(g: &Graph, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..g.n()).collect();
    perm.shuffle(&mut rng);
    let edges = directed_arcs(g)
        .into_iter()
        .map(|(u, v, w)| (perm[u], perm[v], w));
    Graph::new(g.n(), true, edges).with_directedness(g.directed())
}

/// Replaces every weight with a uniform draw from `[1, wmax]`
/// (consistent across the two arcs of an undirected edge), as the
/// paper does for weighted R-MAT runs ("weights are selected randomly
/// between 1 and 100").
pub fn randomize_weights(g: &Graph, wmax: u64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(g.m());
    for (u, v, _) in directed_arcs(g) {
        if !g.directed() && u > v {
            continue; // weight decided by the (u < v) orientation
        }
        edges.push((u, v, Dist::new(rng.gen_range(1..=wmax))));
    }
    Graph::new(g.n(), g.directed(), edges)
}

/// Strips weights (every edge becomes weight 1).
pub fn unweighted_copy(g: &Graph) -> Graph {
    let edges = directed_arcs(g)
        .into_iter()
        .map(|(u, v, _)| (u, v, Dist::ONE));
    Graph::new(g.n(), true, edges).with_directedness(g.directed())
}

/// All stored arcs of `g` as triples.
fn directed_arcs(g: &Graph) -> Vec<(usize, usize, Dist)> {
    g.adjacency().iter().map(|(u, v, w)| (u, v, *w)).collect()
}

impl Graph {
    /// Rewrites the directedness flag without touching arcs (helper
    /// for preprocessing passes that rebuild via directed arcs).
    fn with_directedness(self, directed: bool) -> Graph {
        Graph::from_adjacency(self.adjacency().clone(), directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn isolated_removal_compacts() {
        let g = Graph::unweighted(6, false, vec![(0, 2), (2, 5)]);
        let c = remove_isolated(&g);
        assert_eq!(c.n(), 3);
        assert_eq!(c.edge_count(), 2);
        assert!(!c.directed());
    }

    #[test]
    fn no_isolated_is_noop() {
        let g = Graph::unweighted(3, false, vec![(0, 1), (1, 2)]);
        let c = remove_isolated(&g);
        assert_eq!(c.adjacency(), g.adjacency());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::unweighted(50, false, (0..49).map(|i| (i, i + 1)));
        let r = random_relabel(&g, 1);
        assert_eq!(r.n(), g.n());
        assert_eq!(r.m(), g.m());
        let (avg_g, max_g) = degree_stats(&g);
        let (avg_r, max_r) = degree_stats(&r);
        assert_eq!(avg_g, avg_r);
        assert_eq!(max_g, max_r);
        assert_ne!(r.adjacency(), g.adjacency(), "permutation was identity");
    }

    #[test]
    fn weight_randomization_is_symmetric_for_undirected() {
        let g = Graph::unweighted(10, false, vec![(0, 1), (2, 3), (4, 5)]);
        let w = randomize_weights(&g, 100, 7);
        for (u, v, wt) in w.adjacency().iter() {
            assert_eq!(w.adjacency().get(v, u), Some(wt), "asymmetric at ({u},{v})");
            assert!((1..=100).contains(&wt.raw()));
        }
    }

    #[test]
    fn unweighted_copy_resets_weights() {
        let g = Graph::new(3, true, vec![(0, 1, Dist::new(42))]);
        let u = unweighted_copy(&g);
        assert!(u.is_unit_weighted());
        assert!(u.directed());
        assert_eq!(u.m(), 1);
    }
}
