//! Graphs, generators, statistics, and preprocessing for MFBC.
//!
//! Provides the evaluation workloads of the paper's §7:
//!
//! * [`gen::rmat`](gen::rmat()) — R-MAT power-law graphs (Chakrabarti et al.),
//!   used for the strong-scaling experiments of Fig. 1(c);
//! * [`gen::uniform`](gen::uniform()) — Erdős–Rényi uniform random graphs, used for
//!   the weak-scaling experiments of Fig. 2;
//! * [`gen::snapgen`] — parameterized stand-ins for the SNAP
//!   real-world graphs of Table 2 (Friendster, Orkut, LiveJournal,
//!   Patents), scaled down; see DESIGN.md §3 for the substitution
//!   rationale;
//! * [`stats`] — degree distributions, BFS-sampled effective
//!   diameter, reachability;
//! * [`prep`] — the paper's preprocessing (isolated-vertex removal,
//!   random relabeling for block load balance, symmetrization,
//!   weight assignment);
//! * [`io`] — SNAP-format edge-list reading/writing, for running on
//!   the real datasets when available.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod gen;
pub mod graph;
pub mod io;
pub mod prep;
pub mod stats;

pub use graph::Graph;
