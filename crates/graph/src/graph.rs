//! The graph type: a weighted, possibly directed graph stored as a
//! sparse adjacency matrix over the weight domain `W`.

use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::Dist;
use mfbc_sparse::{transpose::transpose, Coo, Csr};

/// A labeled graph `G = (V, E, w)` with `V = 0..n`, represented by
/// its adjacency matrix `A(i,j) = w(i,j)` (entries absent for
/// non-edges, i.e. `A(i,j) = ∞` implicitly — §2.1).
///
/// For undirected graphs both orientations of every edge are stored,
/// so `m()` counts *directed* arcs; parallel edges are merged keeping
/// the minimum weight, and self-loops are dropped (they never lie on
/// a shortest path under positive weights and the paper's
/// preprocessing removes them).
#[derive(Clone, Debug)]
pub struct Graph {
    directed: bool,
    adj: Csr<Dist>,
}

impl Graph {
    /// Builds a graph from weighted edges. Self-loops are discarded;
    /// duplicate edges keep the minimum weight; for undirected graphs
    /// the reverse arcs are added automatically.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or a weight is zero
    /// (shortest-path multiplicities require strictly positive
    /// weights) or infinite.
    pub fn new(
        n: usize,
        directed: bool,
        edges: impl IntoIterator<Item = (usize, usize, Dist)>,
    ) -> Graph {
        let mut coo = Coo::new(n, n);
        for (u, v, w) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            assert!(
                w.is_finite() && w > Dist::ZERO,
                "edge weights must be finite and positive, got {w:?}"
            );
            if u == v {
                continue;
            }
            coo.push(u, v, w);
            if !directed {
                coo.push(v, u, w);
            }
        }
        Graph {
            directed,
            adj: coo.into_csr::<MinDist>(),
        }
    }

    /// Builds an unweighted graph (all weights 1).
    pub fn unweighted(
        n: usize,
        directed: bool,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Graph {
        Graph::new(
            n,
            directed,
            edges.into_iter().map(|(u, v)| (u, v, Dist::ONE)),
        )
    }

    /// Wraps an adjacency matrix directly (must be square; asserts
    /// symmetry is *not* checked — callers own the `directed` flag).
    pub fn from_adjacency(adj: Csr<Dist>, directed: bool) -> Graph {
        assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
        Graph { directed, adj }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of stored (directed) arcs. For an undirected graph this
    /// is `2·|E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.nnz()
    }

    /// Number of undirected edges `|E|` (arcs for directed graphs).
    pub fn edge_count(&self) -> usize {
        if self.directed {
            self.m()
        } else {
            self.m() / 2
        }
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn directed(&self) -> bool {
        self.directed
    }

    /// The adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &Csr<Dist> {
        &self.adj
    }

    /// The transposed adjacency matrix `Aᵀ` (what MFBr multiplies
    /// by).
    pub fn adjacency_t(&self) -> Csr<Dist> {
        transpose(&self.adj)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_nnz(v)
    }

    /// Whether every edge has weight 1.
    pub fn is_unit_weighted(&self) -> bool {
        self.adj.iter().all(|(_, _, w)| *w == Dist::ONE)
    }

    /// Out-neighbors of `v` with weights.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, Dist)> + '_ {
        self.adj.row(v).map(|(u, w)| (u, *w))
    }

    /// Average degree `m/n` (arcs per vertex).
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_stores_both_arcs() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2)]);
        assert_eq!(g.m(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.adjacency().get(1, 0), Some(&Dist::ONE));
        assert_eq!(g.adjacency().get(0, 1), Some(&Dist::ONE));
    }

    #[test]
    fn directed_stores_one_arc() {
        let g = Graph::unweighted(4, true, vec![(0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.adjacency().get(1, 0), None);
    }

    #[test]
    fn self_loops_dropped_duplicates_min() {
        let g = Graph::new(
            3,
            true,
            vec![
                (0, 0, Dist::new(5)),
                (0, 1, Dist::new(9)),
                (0, 1, Dist::new(4)),
            ],
        );
        assert_eq!(g.m(), 1);
        assert_eq!(g.adjacency().get(0, 1), Some(&Dist::new(4)));
    }

    #[test]
    fn transpose_flips_direction() {
        let g = Graph::unweighted(3, true, vec![(0, 2)]);
        let t = g.adjacency_t();
        assert_eq!(t.get(2, 0), Some(&Dist::ONE));
        assert_eq!(t.get(0, 2), None);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        let _ = Graph::new(2, true, vec![(0, 1, Dist::ZERO)]);
    }

    #[test]
    fn degrees_and_unit_weights() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert!(g.is_unit_weighted());
        assert_eq!(g.avg_degree(), 1.5);
        let w = Graph::new(2, true, vec![(0, 1, Dist::new(7))]);
        assert!(!w.is_unit_weighted());
    }
}
