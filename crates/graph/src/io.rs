//! Edge-list text I/O in the SNAP dataset format.
//!
//! The paper's real-world graphs come from the SNAP collection as
//! whitespace-separated edge lists with `#` comment lines. This
//! module reads that format (with optional third-column integer
//! weights) so users who *do* have the datasets can run the real
//! thing, and writes it back for interchange.

use crate::graph::Graph;
use mfbc_algebra::Dist;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Unparseable line (1-based line number, contents).
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, text) => write!(f, "cannot parse line {line}: {text:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e)
    }
}

/// Reads a SNAP-style edge list: one `src dst [weight]` triple per
/// line, `#`-prefixed comment lines ignored, vertices identified by
/// arbitrary non-negative integers (compacted to `0..n` in first-seen
/// order). Unweighted lines get weight 1.
pub fn read_edge_list(reader: impl Read, directed: bool) -> Result<Graph, IoError> {
    let buf = BufReader::new(reader);
    let mut ids: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut edges: Vec<(usize, usize, Dist)> = Vec::new();
    let intern = |raw: u64, ids: &mut std::collections::HashMap<u64, usize>| -> usize {
        let next = ids.len();
        *ids.entry(raw).or_insert(next)
    };
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let mut parts = text.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse(lineno + 1, line.clone()));
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Parse(lineno + 1, line.clone()));
        };
        let w = match parts.next() {
            Some(ws) => match ws.parse::<u64>() {
                Ok(w) if w > 0 => Dist::new(w),
                _ => return Err(IoError::Parse(lineno + 1, line.clone())),
            },
            None => Dist::ONE,
        };
        let u = intern(a, &mut ids);
        let v = intern(b, &mut ids);
        edges.push((u, v, w));
    }
    // An empty/comment-only file is the empty graph.
    let n = ids.len();
    Ok(Graph::new(n, directed, edges))
}

/// Writes the graph as an edge list (weights included when not all
/// 1). For undirected graphs only the `u < v` orientation is written.
pub fn write_edge_list(g: &Graph, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(
        writer,
        "# n={} arcs={} directed={}",
        g.n(),
        g.m(),
        g.directed()
    )?;
    let unit = g.is_unit_weighted();
    for (u, v, w) in g.adjacency().iter() {
        if !g.directed() && u > v {
            continue;
        }
        if unit {
            writeln!(writer, "{u}\t{v}")?;
        } else {
            writeln!(writer, "{u}\t{v}\t{}", w.raw())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_snap_format() {
        let text = "# comment\n# another\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.is_unit_weighted());
    }

    #[test]
    fn compacts_sparse_vertex_ids() {
        let text = "1000 42\n42 7\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn reads_weights() {
        let text = "0 1 5\n1 2 9\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert!(!g.is_unit_weighted());
        assert_eq!(g.adjacency().get(0, 1), Some(&Dist::new(5)));
        assert_eq!(g.adjacency().get(1, 0), Some(&Dist::new(5)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x\n".as_bytes(), true),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_edge_list("0 1 0\n".as_bytes(), true),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_edge_list("lonely\n".as_bytes(), true),
            Err(IoError::Parse(1, _))
        ));
    }

    #[test]
    fn round_trip_weighted_undirected() {
        let g = Graph::new(
            4,
            false,
            vec![
                (0, 1, Dist::new(3)),
                (1, 2, Dist::new(7)),
                (0, 3, Dist::new(2)),
            ],
        );
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let back = read_edge_list(out.as_slice(), false).unwrap();
        assert_eq!(back.n(), g.n());
        assert_eq!(back.m(), g.m());
        // Labels are compacted in first-seen order, so compare
        // label-invariant structure: the weight multiset.
        let mut w1: Vec<u64> = g.adjacency().iter().map(|(_, _, w)| w.raw()).collect();
        let mut w2: Vec<u64> = back.adjacency().iter().map(|(_, _, w)| w.raw()).collect();
        w1.sort_unstable();
        w2.sort_unstable();
        assert_eq!(w1, w2);
    }

    #[test]
    fn round_trip_directed_unweighted() {
        let g = Graph::unweighted(3, true, vec![(0, 1), (2, 1)]);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let back = read_edge_list(out.as_slice(), true).unwrap();
        assert_eq!(back.m(), 2);
    }
}
