//! Graph statistics: degrees, BFS distances, effective diameter,
//! reachability — the quantities Table 2 reports and the TEPS metric
//! needs.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Degree summary: `(average ρ, maximum ρ̂)`.
pub fn degree_stats(g: &Graph) -> (f64, usize) {
    let max = (0..g.n()).map(|v| g.degree(v)).max().unwrap_or(0);
    (g.avg_degree(), max)
}

/// Unweighted BFS hop distances from `src` (`usize::MAX` for
/// unreachable vertices).
pub fn bfs_hops(g: &Graph, src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let dv = dist[v];
        for (u, _) in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dv + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Sampled effective diameter: the maximum BFS eccentricity over
/// `samples` random sources (a lower bound on the true diameter `d`;
/// the paper's Table 2 uses SNAP's 90-percentile analogue — this
/// sampled max plays the same "how many frontier iterations" role).
pub fn effective_diameter(g: &Graph, samples: usize, seed: u64) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vertices: Vec<usize> = (0..g.n()).collect();
    vertices.shuffle(&mut rng);
    let mut best = 0;
    for &src in vertices.iter().take(samples.max(1)) {
        let ecc = bfs_hops(g, src)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Number of vertices reachable from `src` (including itself).
pub fn reachable_count(g: &Graph, src: usize) -> usize {
    bfs_hops(g, src)
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .count()
}

/// Vertices with no incident arcs in either direction — what the
/// paper's preprocessing removes ("preprocessed all graphs to remove
/// completely disconnected vertices", §7.1).
pub fn isolated_vertices(g: &Graph) -> Vec<usize> {
    let mut touched = vec![false; g.n()];
    for (i, j, _) in g.adjacency().iter() {
        touched[i] = true;
        touched[j] = true;
    }
    (0..g.n()).filter(|&v| !touched[v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::unweighted(n, false, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_hops(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn diameter_of_path() {
        let g = path_graph(10);
        // Sampling every vertex gives the exact diameter.
        assert_eq!(effective_diameter(&g, 10, 1), 9);
    }

    #[test]
    fn unreachable_vertices() {
        let g = Graph::unweighted(4, true, vec![(0, 1)]);
        let d = bfs_hops(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(reachable_count(&g, 0), 2);
    }

    #[test]
    fn isolated_detection() {
        let g = Graph::unweighted(5, false, vec![(0, 1), (3, 0)]);
        assert_eq!(isolated_vertices(&g), vec![2, 4]);
    }

    #[test]
    fn degree_stats_basic() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (0, 2), (0, 3)]);
        let (avg, max) = degree_stats(&g);
        assert_eq!(max, 3);
        assert_eq!(avg, 1.5);
    }
}
