//! Property-based tests of the algebraic laws the MFBC correctness
//! proofs (Lemmas 4.1/4.2) rely on.

use mfbc_algebra::monoid::{laws, MinDist, SumF64};
use mfbc_algebra::{
    BellmanFordAction, BrandesAction, Centpath, CentpathMonoid, Dist, MonoidAction, Multpath,
    MultpathMonoid, Semiring, Tropical,
};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        9 => (0u64..1_000_000).prop_map(Dist::new),
        1 => Just(Dist::INF),
    ]
}

fn arb_finite_dist() -> impl Strategy<Value = Dist> {
    (1u64..10_000).prop_map(Dist::new)
}

fn arb_multpath() -> impl Strategy<Value = Multpath> {
    prop_oneof![
        8 => ((0u64..1_000_000), (1u32..1_000_000)).prop_map(|(w, m)| Multpath::new(Dist::new(w), f64::from(m))),
        1 => Just(Multpath::none()),
        1 => Just(Multpath::trivial()),
    ]
}

fn arb_centpath() -> impl Strategy<Value = Centpath> {
    prop_oneof![
        8 => ((0u64..1_000_000), (0u32..10_000), (-1i64..100)).prop_map(|(w, p, c)| {
            Centpath::new(Dist::new(w), f64::from(p) / 16.0, c)
        }),
        1 => Just(Centpath::none()),
    ]
}

proptest! {
    #[test]
    fn dist_min_monoid_laws(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
        laws::assert_associative::<MinDist>(&a, &b, &c);
        laws::assert_commutative::<MinDist>(&a, &b);
        laws::assert_identity::<MinDist>(&a);
    }

    #[test]
    fn dist_add_is_associative_and_commutative(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Dist::ZERO, a);
    }

    #[test]
    fn tropical_distributivity(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
        let left = Tropical::mul(&a, &Tropical::add(&b, &c));
        let right = Tropical::add(&Tropical::mul(&a, &b), &Tropical::mul(&a, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn multpath_monoid_laws(a in arb_multpath(), b in arb_multpath(), c in arb_multpath()) {
        laws::assert_associative::<MultpathMonoid>(&a, &b, &c);
        laws::assert_commutative::<MultpathMonoid>(&a, &b);
        laws::assert_identity::<MultpathMonoid>(&a);
    }

    #[test]
    fn centpath_monoid_laws(a in arb_centpath(), b in arb_centpath(), c in arb_centpath()) {
        laws::assert_associative::<CentpathMonoid>(&a, &b, &c);
        laws::assert_commutative::<CentpathMonoid>(&a, &b);
        laws::assert_identity::<CentpathMonoid>(&a);
    }

    #[test]
    fn sum_f64_laws_on_dyadics(a in -1000i32..1000, b in -1000i32..1000) {
        // Dyadic rationals add exactly, so associativity is testable.
        let (x, y) = (f64::from(a) / 8.0, f64::from(b) / 8.0);
        laws::assert_commutative::<SumF64>(&x, &y);
        laws::assert_identity::<SumF64>(&x);
    }

    #[test]
    fn bellman_ford_action_axioms(x in arb_multpath(), a in arb_finite_dist(), b in arb_finite_dist()) {
        prop_assert_eq!(BellmanFordAction::act(&x, Dist::ZERO), x);
        prop_assert_eq!(
            BellmanFordAction::act(&BellmanFordAction::act(&x, a), b),
            BellmanFordAction::act(&x, a + b)
        );
    }

    #[test]
    fn brandes_action_axioms(x in arb_centpath(), a in arb_finite_dist(), b in arb_finite_dist()) {
        prop_assert_eq!(BrandesAction::act(&x, Dist::ZERO), x);
        // Composition holds whenever both orders are defined
        // (non-underflowing); either order underflowing must agree
        // with the combined action underflowing.
        let ab = BrandesAction::act(&x, a + b);
        let step = BrandesAction::act(&BrandesAction::act(&x, a), b);
        if !x.is_none() && x.w.checked_back(a + b).map(Dist::is_finite).unwrap_or(false) {
            prop_assert_eq!(step, ab);
        } else {
            prop_assert!(step.is_none() && ab.is_none());
        }
    }

    /// The interchange law used implicitly by Lemma 4.1: acting then
    /// joining equals joining then acting, for equal edge weights.
    #[test]
    fn action_distributes_over_multpath_join(
        x in arb_multpath(),
        y in arb_multpath(),
        w in arb_finite_dist(),
    ) {
        let left = BellmanFordAction::act(&x.join(&y), w);
        let right = BellmanFordAction::act(&x, w).join(&BellmanFordAction::act(&y, w));
        prop_assert_eq!(left, right);
    }
}
