//! Seeded property tests for the algebraic laws every distributed
//! schedule silently assumes (§3 of the paper): the multpath and
//! centpath operators must be associative, commutative monoids — else
//! different plans' accumulation orders give different answers — and
//! the tropical structure must be a genuine semiring. Element
//! generation comes from the conformance harness's SplitMix64
//! samplers, so the triples tested here have the same distribution as
//! the matrix entries in the cross-plan differential suites.

use mfbc_algebra::monoid::{laws, MinDist, Monoid};
use mfbc_algebra::semiring::{Semiring, Tropical};
use mfbc_algebra::{Centpath, CentpathMonoid, Dist, Multpath, MultpathMonoid};
use mfbc_conformance::gen;
use mfbc_conformance::rng::SplitMix64;

const ROUNDS: usize = 2000;

#[test]
fn min_dist_is_a_commutative_monoid() {
    let mut rng = SplitMix64::new(0x1A35_0001);
    for _ in 0..ROUNDS {
        let (a, b, c) = (
            gen::dist(&mut rng, 1000),
            gen::dist(&mut rng, 1000),
            gen::dist(&mut rng, 1000),
        );
        laws::assert_identity::<MinDist>(&a);
        laws::assert_commutative::<MinDist>(&a, &b);
        laws::assert_associative::<MinDist>(&a, &b, &c);
    }
    // The identity itself participates correctly.
    laws::assert_identity::<MinDist>(&Dist::INF);
    laws::assert_associative::<MinDist>(&Dist::INF, &Dist::ZERO, &Dist::INF);
}

#[test]
fn multpath_monoid_laws() {
    // Multiplicities are integral (1–3), so the f64 sums taken on
    // weight ties are exact and associativity can be asserted with
    // `==`, not a tolerance — the same property the cross-plan
    // equality checks rely on.
    let mut rng = SplitMix64::new(0x1A35_0002);
    for _ in 0..ROUNDS {
        let (a, b, c) = (
            gen::multpath(&mut rng, 40),
            gen::multpath(&mut rng, 40),
            gen::multpath(&mut rng, 40),
        );
        laws::assert_identity::<MultpathMonoid>(&a);
        laws::assert_commutative::<MultpathMonoid>(&a, &b);
        laws::assert_associative::<MultpathMonoid>(&a, &b, &c);
    }
    // Ties must *sum* multiplicities (the path-counting content).
    let x = Multpath::new(Dist::new(7), 2.0);
    let y = Multpath::new(Dist::new(7), 3.0);
    assert_eq!(
        MultpathMonoid::combine(&x, &y),
        Multpath::new(Dist::new(7), 5.0)
    );
}

#[test]
fn centpath_monoid_laws() {
    // The generator emits the adjoined identity (∞, 0, 0) with
    // probability 1/8, so the laws are exercised at the identity and
    // at tied/untied weights alike.
    let mut rng = SplitMix64::new(0x1A35_0003);
    for _ in 0..ROUNDS {
        let (a, b, c) = (
            gen::centpath(&mut rng, 40),
            gen::centpath(&mut rng, 40),
            gen::centpath(&mut rng, 40),
        );
        laws::assert_identity::<CentpathMonoid>(&a);
        laws::assert_commutative::<CentpathMonoid>(&a, &b);
        laws::assert_associative::<CentpathMonoid>(&a, &b, &c);
    }
    // Equal weights combine additively in both payload fields.
    let x = Centpath::new(Dist::new(5), 2.0, 1);
    let y = Centpath::new(Dist::new(5), 3.0, -1);
    assert_eq!(
        CentpathMonoid::combine(&x, &y),
        Centpath::new(Dist::new(5), 5.0, 0)
    );
}

#[test]
fn tropical_semiring_laws() {
    let mut rng = SplitMix64::new(0x1A35_0004);
    for _ in 0..ROUNDS {
        let (a, b, c) = (
            gen::dist(&mut rng, 100_000),
            gen::dist(&mut rng, 100_000),
            gen::dist(&mut rng, 100_000),
        );
        // (W, min) laws via the additive monoid.
        laws::assert_identity::<MinDist>(&a);
        laws::assert_commutative::<MinDist>(&a, &b);
        laws::assert_associative::<MinDist>(&a, &b, &c);
        // (W, +) is a monoid with identity 0̄ = 0.
        assert_eq!(Tropical::mul(&a, &Tropical::one()), a);
        assert_eq!(Tropical::mul(&Tropical::one(), &a), a);
        assert_eq!(
            Tropical::mul(&Tropical::mul(&a, &b), &c),
            Tropical::mul(&a, &Tropical::mul(&b, &c)),
            "⊗ associativity for ({a:?}, {b:?}, {c:?})"
        );
        // ⊗ distributes over ⊕ on both sides:
        // a + min(b,c) = min(a+b, a+c).
        assert_eq!(
            Tropical::mul(&a, &Tropical::add(&b, &c)),
            Tropical::add(&Tropical::mul(&a, &b), &Tropical::mul(&a, &c)),
            "left distributivity for ({a:?}, {b:?}, {c:?})"
        );
        assert_eq!(
            Tropical::mul(&Tropical::add(&b, &c), &a),
            Tropical::add(&Tropical::mul(&b, &a), &Tropical::mul(&c, &a)),
            "right distributivity for ({a:?}, {b:?}, {c:?})"
        );
        // The additive identity ∞ annihilates under ⊗.
        assert_eq!(Tropical::mul(&a, &Tropical::zero()), Tropical::zero());
        assert_eq!(Tropical::mul(&Tropical::zero(), &a), Tropical::zero());
    }
}

#[test]
fn multpath_identity_is_sparse_zero_of_generated_elements() {
    // Anything the generator produces is a real path, hence never
    // pruned; the adjoined identity always is. This is the contract
    // `Coo::into_csr` and `Csr::prune` rely on to keep matrices in
    // normal form.
    let mut rng = SplitMix64::new(0x1A35_0005);
    for _ in 0..ROUNDS {
        assert!(!MultpathMonoid::is_identity(&gen::multpath(&mut rng, 40)));
    }
    assert!(MultpathMonoid::is_identity(&Multpath::none()));
    assert!(CentpathMonoid::is_identity(&Centpath::none()));
    assert!(MinDist::is_identity(&Dist::INF));
}
