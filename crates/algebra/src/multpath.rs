//! The multpath monoid `(M, ⊕)` — §4.1.1 of the paper.
//!
//! A *multpath* models "all currently-known shortest paths between one
//! (source, destination) pair": a weight `w ∈ W` and a multiplicity
//! `m` counting how many distinct paths attain that weight. The monoid
//! operator keeps the lighter of two multpaths and, on ties, sums
//! multiplicities — exactly the bookkeeping Bellman–Ford needs to
//! track `(τ(s,v), σ̄(s,v))` simultaneously.

use crate::monoid::{CommutativeMonoid, Monoid};
use crate::weight::Dist;

/// Number of shortest paths. Stored as `f64`: path counts are sums of
/// integers, which `f64` represents exactly up to 2⁵³, and the final
/// centrality scores are `f64` ratios anyway (same choice CombBLAS
/// makes). Counts beyond 2⁵³ lose integrality but remain monotone.
pub type Multiplicity = f64;

/// A multpath `x = (x.w, x.m) ∈ M = W × ℕ`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Multpath {
    /// Total weight of the path(s).
    pub w: Dist,
    /// Number of distinct paths of weight `w`.
    pub m: Multiplicity,
}

impl Multpath {
    /// A multpath with `m` paths of weight `w`.
    #[inline]
    pub fn new(w: Dist, m: Multiplicity) -> Multpath {
        Multpath { w, m }
    }

    /// The identity of `⊕`: no path known, `(∞, 0)`.
    ///
    /// This is the sparse-zero of every multpath matrix: entries equal
    /// to it are simply not stored.
    #[inline]
    pub fn none() -> Multpath {
        Multpath {
            w: Dist::INF,
            m: 0.0,
        }
    }

    /// The trivial path from a vertex to itself: weight 0, one path.
    #[inline]
    pub fn trivial() -> Multpath {
        Multpath {
            w: Dist::ZERO,
            m: 1.0,
        }
    }

    /// Whether this multpath represents at least one finite path.
    #[inline]
    pub fn is_path(&self) -> bool {
        self.w.is_finite() && self.m > 0.0
    }

    /// The multpath operator `⊕`: keep the lighter path set, summing
    /// multiplicities on weight ties.
    #[inline]
    pub fn join(&self, other: &Multpath) -> Multpath {
        match self.w.cmp(&other.w) {
            std::cmp::Ordering::Less => *self,
            std::cmp::Ordering::Greater => *other,
            std::cmp::Ordering::Equal => Multpath {
                w: self.w,
                m: self.m + other.m,
            },
        }
    }
}

/// Zero-sized marker implementing [`Monoid`] for [`Multpath`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MultpathMonoid;

impl Monoid for MultpathMonoid {
    type Elem = Multpath;

    #[inline]
    fn combine(a: &Multpath, b: &Multpath) -> Multpath {
        a.join(b)
    }

    #[inline]
    fn identity() -> Multpath {
        Multpath::none()
    }

    /// Anything without a finite path is treated as sparse-zero, even
    /// when its stored multiplicity differs from 0 (the paper's line-1
    /// `(∞, 1)` initialization never escapes into stored state here —
    /// non-edges are non-entries).
    #[inline]
    fn is_identity(e: &Multpath) -> bool {
        !e.is_path()
    }

    #[inline]
    fn fold_into(acc: &mut Multpath, x: &Multpath) {
        match acc.w.cmp(&x.w) {
            std::cmp::Ordering::Less => {}
            std::cmp::Ordering::Greater => *acc = *x,
            std::cmp::Ordering::Equal => acc.m += x.m,
        }
    }
}

impl CommutativeMonoid for MultpathMonoid {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::laws;

    fn samples() -> Vec<Multpath> {
        vec![
            Multpath::none(),
            Multpath::trivial(),
            Multpath::new(Dist::new(3), 2.0),
            Multpath::new(Dist::new(3), 5.0),
            Multpath::new(Dist::new(9), 1.0),
        ]
    }

    #[test]
    fn lighter_path_wins() {
        let a = Multpath::new(Dist::new(2), 4.0);
        let b = Multpath::new(Dist::new(5), 9.0);
        assert_eq!(a.join(&b), a);
        assert_eq!(b.join(&a), a);
    }

    #[test]
    fn equal_weight_sums_multiplicities() {
        let a = Multpath::new(Dist::new(4), 2.0);
        let b = Multpath::new(Dist::new(4), 3.0);
        assert_eq!(a.join(&b), Multpath::new(Dist::new(4), 5.0));
    }

    #[test]
    fn identity_is_no_path() {
        for x in samples() {
            laws::assert_identity::<MultpathMonoid>(&x);
        }
        assert!(MultpathMonoid::is_identity(&Multpath::none()));
        // (∞, 1) also behaves as a zero: it carries no finite path.
        assert!(MultpathMonoid::is_identity(&Multpath::new(Dist::INF, 1.0)));
        assert!(!MultpathMonoid::is_identity(&Multpath::trivial()));
    }

    #[test]
    fn monoid_laws_on_samples() {
        let xs = samples();
        for a in &xs {
            for b in &xs {
                laws::assert_commutative::<MultpathMonoid>(a, b);
                for c in &xs {
                    laws::assert_associative::<MultpathMonoid>(a, b, c);
                }
            }
        }
    }

    #[test]
    fn fold_into_matches_combine() {
        let xs = samples();
        for a in &xs {
            for b in &xs {
                let mut acc = *a;
                MultpathMonoid::fold_into(&mut acc, b);
                assert_eq!(acc, MultpathMonoid::combine(a, b));
            }
        }
    }
}
