//! The weight domain `W ⊂ ℝ ∪ {∞}`.
//!
//! The paper works with edge weights from a set `W` that contains an
//! absorbing infinity (`A(i,j) = ∞` for non-edges). Its experiments use
//! integer weights drawn uniformly from `[1, 100]`, and unweighted
//! graphs are weight-1 graphs. We therefore represent distances as
//! unsigned 64-bit integers with a dedicated `∞` sentinel and
//! saturating arithmetic, which keeps every monoid operation exact and
//! `Ord`-able (no floating-point comparison pitfalls) while supporting
//! path lengths up to `~1.8e19`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A path/edge weight: a non-negative integer distance or `∞`.
///
/// `Dist` forms the commutative monoid `(W, +)` with identity
/// [`Dist::ZERO`], where `∞` is absorbing; and the commutative monoid
/// `(W, min)` with identity [`Dist::INF`] — together these are the
/// tropical semiring (see [`crate::semiring::Tropical`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dist(u64);

impl Dist {
    /// The additive identity (a zero-length path).
    pub const ZERO: Dist = Dist(0);
    /// The unit edge weight used for unweighted graphs.
    pub const ONE: Dist = Dist(1);
    /// Infinity: the weight of a non-existent edge/path. Absorbing
    /// under `+`, identity under `min`.
    pub const INF: Dist = Dist(u64::MAX);

    /// Builds a finite distance from an integer.
    ///
    /// # Panics
    /// Panics if `w == u64::MAX`, which is reserved for [`Dist::INF`].
    #[inline]
    pub fn new(w: u64) -> Dist {
        assert!(w != u64::MAX, "u64::MAX is reserved for Dist::INF");
        Dist(w)
    }

    /// Whether this weight is finite (i.e. an actual path exists).
    #[inline]
    pub fn is_finite(self) -> bool {
        self != Dist::INF
    }

    /// The raw integer value; `u64::MAX` encodes `∞`.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the finite value or `None` for `∞`.
    #[inline]
    pub fn finite(self) -> Option<u64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// `min` of two weights — the additive operator of the tropical
    /// semiring.
    #[inline]
    pub fn min(self, other: Dist) -> Dist {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction used by the Brandes action
    /// `g(a, w) = (a.w − w, …)`; `∞ − w = ∞`.
    ///
    /// # Panics
    /// Panics in debug builds if `other > self` for finite `self`
    /// (the Brandes action only ever subtracts an edge from a path
    /// containing it).
    #[inline]
    pub fn checked_back(self, other: Dist) -> Option<Dist> {
        if !self.is_finite() {
            return Some(Dist::INF);
        }
        if !other.is_finite() {
            return None;
        }
        self.0.checked_sub(other.0).map(Dist)
    }
}

impl Add for Dist {
    type Output = Dist;

    /// `∞`-absorbing, saturating addition: `∞ + w = w + ∞ = ∞`.
    #[inline]
    fn add(self, rhs: Dist) -> Dist {
        if !self.is_finite() || !rhs.is_finite() {
            Dist::INF
        } else {
            // Saturate *below* INF so overflow cannot alias a finite
            // sum with the infinity sentinel.
            Dist(self.0.saturating_add(rhs.0).min(u64::MAX - 1))
        }
    }
}

impl AddAssign for Dist {
    #[inline]
    fn add_assign(&mut self, rhs: Dist) {
        *self = *self + rhs;
    }
}

impl Sub for Dist {
    type Output = Dist;

    /// Backward traversal subtraction; see [`Dist::checked_back`].
    ///
    /// # Panics
    /// Panics if `rhs` is `∞` while `self` is finite, or on underflow.
    #[inline]
    fn sub(self, rhs: Dist) -> Dist {
        self.checked_back(rhs)
            .expect("Dist subtraction underflow: edge longer than path")
    }
}

impl From<u32> for Dist {
    #[inline]
    fn from(w: u32) -> Dist {
        Dist(u64::from(w))
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "inf")
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Dist {
    /// The default is `∞` — the "no path known" state, which is the
    /// sparse-zero of every distance matrix in this workspace.
    #[inline]
    fn default() -> Dist {
        Dist::INF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_addition() {
        assert_eq!(Dist::new(2) + Dist::new(3), Dist::new(5));
        assert_eq!(Dist::ZERO + Dist::new(7), Dist::new(7));
    }

    #[test]
    fn infinity_absorbs_addition() {
        assert_eq!(Dist::INF + Dist::new(3), Dist::INF);
        assert_eq!(Dist::new(3) + Dist::INF, Dist::INF);
        assert_eq!(Dist::INF + Dist::INF, Dist::INF);
    }

    #[test]
    fn addition_saturates_below_inf() {
        let near = Dist::new(u64::MAX - 2);
        let sum = near + near;
        assert!(sum.is_finite());
        assert_eq!(sum.raw(), u64::MAX - 1);
    }

    #[test]
    fn min_is_commutative_monoid_with_inf_identity() {
        assert_eq!(Dist::new(2).min(Dist::new(3)), Dist::new(2));
        assert_eq!(Dist::INF.min(Dist::new(3)), Dist::new(3));
        assert_eq!(Dist::new(3).min(Dist::INF), Dist::new(3));
        assert_eq!(Dist::INF.min(Dist::INF), Dist::INF);
    }

    #[test]
    fn subtraction_for_backward_traversal() {
        assert_eq!(Dist::new(9) - Dist::new(4), Dist::new(5));
        assert_eq!(Dist::INF - Dist::new(4), Dist::INF);
        assert_eq!(Dist::new(4).checked_back(Dist::new(9)), None);
        assert_eq!(Dist::new(4).checked_back(Dist::INF), None);
    }

    #[test]
    #[should_panic]
    fn reserved_sentinel_rejected() {
        let _ = Dist::new(u64::MAX);
    }

    #[test]
    fn ordering_places_inf_last() {
        let mut v = vec![Dist::INF, Dist::new(4), Dist::ZERO, Dist::new(100)];
        v.sort();
        assert_eq!(v, vec![Dist::ZERO, Dist::new(4), Dist::new(100), Dist::INF]);
    }

    #[test]
    fn default_is_inf() {
        assert_eq!(Dist::default(), Dist::INF);
    }
}
