//! Monoid actions of the weight monoid `(W, +)` on multpaths and
//! centpaths — §4.1.2 and §4.2.2.
//!
//! An action supplies the "multiplicative" side of a generalized
//! matrix product when the two operand domains differ: the frontier
//! matrix holds monoid elements (multpaths/centpaths) while the
//! adjacency matrix holds plain edge weights.

use crate::centpath::Centpath;
use crate::multpath::Multpath;
use crate::weight::Dist;

/// An action of the monoid `(W, +)` on a set `M`:
/// `act(act(x, w₁), w₂) == act(x, w₁ + w₂)` and `act(x, 0) == x`.
pub trait MonoidAction: Copy + Default + Send + Sync + 'static {
    /// The set being acted upon.
    type Elem: Clone + Send + Sync;

    /// Applies the weight `w` to `x`.
    fn act(x: &Self::Elem, w: Dist) -> Self::Elem;
}

/// The Bellman–Ford action `f : M × W → M`,
/// `f((w, m), e) = (w + e, m)`: extending every path in a multpath by
/// one edge preserves the multiplicity and adds the edge weight.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BellmanFordAction;

impl MonoidAction for BellmanFordAction {
    type Elem = Multpath;

    #[inline]
    fn act(x: &Multpath, w: Dist) -> Multpath {
        Multpath { w: x.w + w, m: x.m }
    }
}

/// The Brandes action `g : C × W → C`,
/// `g((w, p, c), e) = (w − e, p, c)`: walking one edge backwards along
/// a shortest path reduces the anchoring weight and carries the
/// centrality payload unchanged.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BrandesAction;

impl MonoidAction for BrandesAction {
    type Elem = Centpath;

    /// Applies `g`. If the subtraction would underflow (the edge is
    /// longer than the remaining path, so `v` cannot possibly be a
    /// predecessor), the result is the null centpath, which the
    /// accumulating `⊗` ignores.
    #[inline]
    fn act(x: &Centpath, w: Dist) -> Centpath {
        match x.w.checked_back(w) {
            Some(back) if back.is_finite() => Centpath {
                w: back,
                p: x.p,
                c: x.c,
            },
            _ => Centpath::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bellman_ford_action_is_an_action() {
        let x = Multpath::new(Dist::new(5), 3.0);
        // act(x, 0) == x
        assert_eq!(BellmanFordAction::act(&x, Dist::ZERO), x);
        // act(act(x, a), b) == act(x, a + b)
        let (a, b) = (Dist::new(2), Dist::new(9));
        assert_eq!(
            BellmanFordAction::act(&BellmanFordAction::act(&x, a), b),
            BellmanFordAction::act(&x, a + b)
        );
    }

    #[test]
    fn bellman_ford_preserves_multiplicity() {
        let x = Multpath::new(Dist::new(5), 7.0);
        let y = BellmanFordAction::act(&x, Dist::new(4));
        assert_eq!(y, Multpath::new(Dist::new(9), 7.0));
    }

    #[test]
    fn bellman_ford_infinite_stays_infinite() {
        let x = Multpath::new(Dist::INF, 1.0);
        let y = BellmanFordAction::act(&x, Dist::new(4));
        assert_eq!(y.w, Dist::INF);
    }

    #[test]
    fn brandes_action_subtracts() {
        let x = Centpath::new(Dist::new(9), 0.5, -1);
        let y = BrandesAction::act(&x, Dist::new(4));
        assert_eq!(y, Centpath::new(Dist::new(5), 0.5, -1));
    }

    #[test]
    fn brandes_action_underflow_yields_none() {
        let x = Centpath::new(Dist::new(3), 0.5, -1);
        let y = BrandesAction::act(&x, Dist::new(4));
        assert!(y.is_none());
    }

    #[test]
    fn brandes_action_composition_where_defined() {
        let x = Centpath::new(Dist::new(10), 1.0, 2);
        let (a, b) = (Dist::new(3), Dist::new(4));
        assert_eq!(
            BrandesAction::act(&BrandesAction::act(&x, a), b),
            BrandesAction::act(&x, a + b)
        );
    }
}
