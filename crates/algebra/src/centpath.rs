//! The centpath monoid `(C, ⊗)` — §4.2.1 of the paper.
//!
//! A *centpath* carries a path weight `w`, a partial centrality factor
//! `p`, and a predecessor counter `c`. The operator `⊗` keeps the
//! element of **greater** weight and, on ties, sums both the factors
//! and the counters. "Greater wins" is what makes backward propagation
//! work: a contribution arriving at `v` from a successor `k` has
//! weight `τ(s,k) − A(v,k) ≤ τ(s,v)` (triangle inequality), with
//! equality exactly when `v` is a true shortest-path predecessor of
//! `k` — so joining against the anchor `(τ(s,v), …)` discards every
//! invalid contribution.
//!
//! The factor converges to `ζ(s,v) = δ(s,v)/σ̄(s,v)`, the partial
//! centrality factor of Sariyüce et al. used by the paper instead of
//! the dependency `δ` itself. The counter tracks how many
//! shortest-path-tree children of `v` have not yet reported; `v`
//! enters the backward frontier when it reaches zero and is then
//! pinned to −1 so it never re-enters.

use crate::monoid::{CommutativeMonoid, Monoid};
use crate::weight::Dist;

/// A centpath `x = (x.w, x.p, x.c) ∈ C = W × ℝ × ℤ`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Centpath {
    /// Path weight anchoring the entry to `τ(s,v)`.
    pub w: Dist,
    /// Partial centrality factor (converges to `ζ(s,v)`).
    pub p: f64,
    /// Counter of shortest-path children yet to report; −1 once the
    /// vertex has passed through a frontier.
    pub c: i64,
}

impl Centpath {
    /// Builds a centpath.
    #[inline]
    pub fn new(w: Dist, p: f64, c: i64) -> Centpath {
        Centpath { w, p, c }
    }

    /// The `(∞, 0, 0)` element: "not part of any frontier / no
    /// information". It is the sparse-zero and the (adjoined) identity
    /// of `⊗`.
    #[inline]
    pub fn none() -> Centpath {
        Centpath {
            w: Dist::INF,
            p: 0.0,
            c: 0,
        }
    }

    /// Whether this is the null element `(∞, 0, 0)`.
    ///
    /// Real contributions always carry a finite weight (they are built
    /// from finite frontier entries minus finite edge weights), so
    /// `w = ∞` unambiguously marks the null element.
    #[inline]
    pub fn is_none(&self) -> bool {
        !self.w.is_finite()
    }

    /// The centpath operator `⊗`: greater weight wins; ties sum `p`
    /// and `c`. `(∞,0,0)` acts as the identity rather than absorbing,
    /// matching the paper's sparse semantics where `(∞,0,0)` entries
    /// are never stored or combined.
    #[inline]
    pub fn join(&self, other: &Centpath) -> Centpath {
        if self.is_none() {
            return *other;
        }
        if other.is_none() {
            return *self;
        }
        match self.w.cmp(&other.w) {
            std::cmp::Ordering::Greater => *self,
            std::cmp::Ordering::Less => *other,
            std::cmp::Ordering::Equal => Centpath {
                w: self.w,
                p: self.p + other.p,
                c: self.c + other.c,
            },
        }
    }
}

/// Zero-sized marker implementing [`Monoid`] for [`Centpath`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CentpathMonoid;

impl Monoid for CentpathMonoid {
    type Elem = Centpath;

    #[inline]
    fn combine(a: &Centpath, b: &Centpath) -> Centpath {
        a.join(b)
    }

    #[inline]
    fn identity() -> Centpath {
        Centpath::none()
    }

    #[inline]
    fn is_identity(e: &Centpath) -> bool {
        e.is_none()
    }

    #[inline]
    fn fold_into(acc: &mut Centpath, x: &Centpath) {
        if x.is_none() {
            return;
        }
        if acc.is_none() {
            *acc = *x;
            return;
        }
        match acc.w.cmp(&x.w) {
            std::cmp::Ordering::Greater => {}
            std::cmp::Ordering::Less => *acc = *x,
            std::cmp::Ordering::Equal => {
                acc.p += x.p;
                acc.c += x.c;
            }
        }
    }
}

impl CommutativeMonoid for CentpathMonoid {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::laws;

    fn samples() -> Vec<Centpath> {
        vec![
            Centpath::none(),
            Centpath::new(Dist::ZERO, 0.5, 1),
            Centpath::new(Dist::new(4), 1.0, 2),
            Centpath::new(Dist::new(4), 0.25, -1),
            Centpath::new(Dist::new(9), 0.0, 3),
        ]
    }

    #[test]
    fn greater_weight_wins() {
        let lo = Centpath::new(Dist::new(2), 1.0, 1);
        let hi = Centpath::new(Dist::new(7), 2.0, 1);
        assert_eq!(lo.join(&hi), hi);
        assert_eq!(hi.join(&lo), hi);
    }

    #[test]
    fn equal_weight_sums_factor_and_counter() {
        let a = Centpath::new(Dist::new(4), 0.5, 2);
        let b = Centpath::new(Dist::new(4), 0.25, -1);
        assert_eq!(a.join(&b), Centpath::new(Dist::new(4), 0.75, 1));
    }

    #[test]
    fn none_is_identity_not_absorber() {
        // A naive "greater weight wins" would let (∞,0,0) absorb
        // everything; the adjoined-identity semantics must not.
        let a = Centpath::new(Dist::new(4), 0.5, 2);
        assert_eq!(Centpath::none().join(&a), a);
        assert_eq!(a.join(&Centpath::none()), a);
    }

    #[test]
    fn monoid_laws_on_samples() {
        let xs = samples();
        for a in &xs {
            laws::assert_identity::<CentpathMonoid>(a);
            for b in &xs {
                laws::assert_commutative::<CentpathMonoid>(a, b);
                for c in &xs {
                    laws::assert_associative::<CentpathMonoid>(a, b, c);
                }
            }
        }
    }

    #[test]
    fn fold_into_matches_combine() {
        let xs = samples();
        for a in &xs {
            for b in &xs {
                let mut acc = *a;
                CentpathMonoid::fold_into(&mut acc, b);
                assert_eq!(acc, CentpathMonoid::combine(a, b));
            }
        }
    }
}
