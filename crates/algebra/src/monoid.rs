//! Monoid and commutative-monoid traits with stock instances.
//!
//! A monoid `(S, ⊕)` is a set closed under an associative binary
//! operation with an identity element (§2.2 of the paper). Commutative
//! monoids are what the generalized matrix product accumulates with,
//! and what elementwise matrix addition `A ⊕ B` applies.
//!
//! Monoids here are *zero-sized marker types* implementing [`Monoid`];
//! operations dispatch statically, so a generalized SpGEMM
//! monomorphizes to tight per-structure kernels — the same effect CTF
//! obtains by passing user functions as C++ template arguments (§6.1).

use crate::weight::Dist;

/// A monoid `(Self::Elem, combine)` with identity `identity()`.
///
/// Laws (checked by unit and property tests, not by the compiler):
///
/// * associativity: `combine(a, combine(b, c)) == combine(combine(a, b), c)`
/// * identity: `combine(identity(), a) == a == combine(a, identity())`
pub trait Monoid: Copy + Default + Send + Sync + 'static {
    /// The carrier set.
    type Elem: Clone + PartialEq + Send + Sync + std::fmt::Debug;

    /// The associative binary operation `⊕`.
    fn combine(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// The identity element of `⊕`.
    fn identity() -> Self::Elem;

    /// Whether `e` is the identity. Identity elements are the
    /// *sparse zeros*: a sparse matrix never stores them.
    #[inline]
    fn is_identity(e: &Self::Elem) -> bool {
        *e == Self::identity()
    }

    /// In-place fold: `acc := acc ⊕ x`. Override when an in-place
    /// update avoids allocation.
    #[inline]
    fn fold_into(acc: &mut Self::Elem, x: &Self::Elem) {
        *acc = Self::combine(acc, x);
    }
}

/// Marker trait asserting that [`Monoid::combine`] is commutative.
///
/// Only commutative monoids may be used as the accumulator `⊕` of a
/// generalized matrix multiplication, since block algorithms reorder
/// the reduction arbitrarily across processors.
pub trait CommutativeMonoid: Monoid {}

/// The `(W, min)` commutative monoid with identity `∞`.
///
/// Together with the action `(W, +)`, this is the additive part of the
/// tropical semiring used by BFS/Bellman–Ford (§2.3).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MinDist;

impl Monoid for MinDist {
    type Elem = Dist;

    #[inline]
    fn combine(a: &Dist, b: &Dist) -> Dist {
        (*a).min(*b)
    }

    #[inline]
    fn identity() -> Dist {
        Dist::INF
    }
}

impl CommutativeMonoid for MinDist {}

/// The `(f64, +)` commutative monoid with identity `0.0`.
///
/// Used to accumulate centrality scores `λ(v)`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SumF64;

impl Monoid for SumF64 {
    type Elem = f64;

    #[inline]
    fn combine(a: &f64, b: &f64) -> f64 {
        a + b
    }

    #[inline]
    fn identity() -> f64 {
        0.0
    }
}

impl CommutativeMonoid for SumF64 {}

/// The `(u64, +)` commutative monoid with identity `0`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SumU64;

impl Monoid for SumU64 {
    type Elem = u64;

    #[inline]
    fn combine(a: &u64, b: &u64) -> u64 {
        a + b
    }

    #[inline]
    fn identity() -> u64 {
        0
    }
}

impl CommutativeMonoid for SumU64 {}

/// The `(u64, max)` commutative monoid with identity `0`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MaxU64;

impl Monoid for MaxU64 {
    type Elem = u64;

    #[inline]
    fn combine(a: &u64, b: &u64) -> u64 {
        (*a).max(*b)
    }

    #[inline]
    fn identity() -> u64 {
        0
    }
}

impl CommutativeMonoid for MaxU64 {}

/// Folds an iterator with a monoid: `⊕_{i} s(i)`, returning the
/// identity for an empty iterator (the `⊕_{i=j}^{k}` notation of
/// §2.2).
pub fn fold<M, I>(iter: I) -> M::Elem
where
    M: Monoid,
    I: IntoIterator<Item = M::Elem>,
{
    let mut acc = M::identity();
    for x in iter {
        M::fold_into(&mut acc, &x);
    }
    acc
}

/// Test-support helpers asserting the monoid laws on sampled elements.
///
/// Intended for unit/property tests of concrete monoid instances; the
/// functions panic with a descriptive message when a law is violated.
pub mod laws {
    use super::Monoid;

    /// Asserts `a ⊕ (b ⊕ c) == (a ⊕ b) ⊕ c`.
    pub fn assert_associative<M: Monoid>(a: &M::Elem, b: &M::Elem, c: &M::Elem) {
        let left = M::combine(a, &M::combine(b, c));
        let right = M::combine(&M::combine(a, b), c);
        assert_eq!(
            left, right,
            "monoid associativity violated for ({a:?}, {b:?}, {c:?})"
        );
    }

    /// Asserts `e ⊕ a == a == a ⊕ e` for the identity `e`.
    pub fn assert_identity<M: Monoid>(a: &M::Elem) {
        let e = M::identity();
        assert_eq!(M::combine(&e, a), *a, "left identity violated for {a:?}");
        assert_eq!(M::combine(a, &e), *a, "right identity violated for {a:?}");
        assert!(M::is_identity(&e), "identity not recognized as identity");
    }

    /// Asserts `a ⊕ b == b ⊕ a`.
    pub fn assert_commutative<M: Monoid>(a: &M::Elem, b: &M::Elem) {
        assert_eq!(
            M::combine(a, b),
            M::combine(b, a),
            "commutativity violated for ({a:?}, {b:?})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_dist_laws() {
        let xs = [Dist::ZERO, Dist::new(3), Dist::new(7), Dist::INF];
        for a in xs {
            laws::assert_identity::<MinDist>(&a);
            for b in xs {
                laws::assert_commutative::<MinDist>(&a, &b);
                for c in xs {
                    laws::assert_associative::<MinDist>(&a, &b, &c);
                }
            }
        }
    }

    #[test]
    fn sum_f64_laws() {
        let xs = [0.0, 1.5, -2.25, 1024.0];
        for a in xs {
            laws::assert_identity::<SumF64>(&a);
            for b in xs {
                laws::assert_commutative::<SumF64>(&a, &b);
                for c in xs {
                    laws::assert_associative::<SumF64>(&a, &b, &c);
                }
            }
        }
    }

    #[test]
    fn sum_and_max_u64_laws() {
        let xs = [0u64, 1, 99, u64::MAX / 4];
        for a in xs {
            laws::assert_identity::<SumU64>(&a);
            laws::assert_identity::<MaxU64>(&a);
            for b in xs {
                laws::assert_commutative::<SumU64>(&a, &b);
                laws::assert_commutative::<MaxU64>(&a, &b);
            }
        }
    }

    #[test]
    fn fold_matches_iterated_combine() {
        let xs = vec![Dist::new(5), Dist::new(2), Dist::INF, Dist::new(9)];
        assert_eq!(fold::<MinDist, _>(xs), Dist::new(2));
        assert_eq!(fold::<MinDist, _>(Vec::new()), Dist::INF);
        assert_eq!(fold::<SumU64, _>(vec![1, 2, 3]), 6);
    }
}
