//! Classical semirings, kept for the baseline algorithms and for
//! contrast with the monoid formulation.
//!
//! A semiring `(T, ⊕, ⊗)` requires both operations to stay inside one
//! carrier set `T` (§2.2). The paper's point is that MFBC *cannot* be
//! phrased this way without padding, because its products mix multpath
//! (or centpath) operands with plain edge weights — hence the monoid
//! action machinery in [`crate::action`]. The semiring trait is still
//! the natural home of the tropical structure used by BFS-style
//! baselines (CombBLAS-style Brandes) and by the distance-only parts
//! of test oracles.

use crate::monoid::{CommutativeMonoid, MinDist, Monoid};
use crate::weight::Dist;

/// A semiring `(T, ⊕, ⊗)`: `(T, ⊕)` a commutative monoid, `(T, ⊗)` a
/// monoid, with `⊗` distributing over `⊕` and the `⊕`-identity
/// annihilating under `⊗`.
pub trait Semiring: Copy + Default + Send + Sync + 'static {
    /// The carrier set.
    type Elem: Clone + PartialEq + Send + Sync + std::fmt::Debug;
    /// The additive commutative monoid `(T, ⊕)`.
    type Add: CommutativeMonoid<Elem = Self::Elem>;

    /// The multiplicative operation `⊗`.
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// The multiplicative identity.
    fn one() -> Self::Elem;

    /// The additive identity (delegates to the additive monoid).
    #[inline]
    fn zero() -> Self::Elem {
        Self::Add::identity()
    }

    /// Additive combination (delegates to the additive monoid).
    #[inline]
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        Self::Add::combine(a, b)
    }
}

/// The tropical semiring `(W, min, +)` with `0̄ = ∞`, `1̄ = 0`.
///
/// This is the structure under which iterated `x ← x •⟨min,+⟩ A`
/// computes single-source shortest distances (§2.3).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Tropical;

impl Semiring for Tropical {
    type Elem = Dist;
    type Add = MinDist;

    #[inline]
    fn mul(a: &Dist, b: &Dist) -> Dist {
        *a + *b
    }

    #[inline]
    fn one() -> Dist {
        Dist::ZERO
    }
}

/// The Boolean semiring `({false, true}, ∨, ∧)`, used by reachability
/// tests and by frontier-structure assertions in the test suite.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BoolSemiring;

/// `(bool, ∨)` commutative monoid with identity `false`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct OrBool;

impl Monoid for OrBool {
    type Elem = bool;

    #[inline]
    fn combine(a: &bool, b: &bool) -> bool {
        *a || *b
    }

    #[inline]
    fn identity() -> bool {
        false
    }
}

impl CommutativeMonoid for OrBool {}

impl Semiring for BoolSemiring {
    type Elem = bool;
    type Add = OrBool;

    #[inline]
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }

    #[inline]
    fn one() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tropical_identities() {
        assert_eq!(Tropical::zero(), Dist::INF);
        assert_eq!(Tropical::one(), Dist::ZERO);
        let a = Dist::new(5);
        assert_eq!(Tropical::add(&a, &Tropical::zero()), a);
        assert_eq!(Tropical::mul(&a, &Tropical::one()), a);
    }

    #[test]
    fn tropical_zero_annihilates() {
        let a = Dist::new(5);
        assert_eq!(Tropical::mul(&a, &Tropical::zero()), Dist::INF);
        assert_eq!(Tropical::mul(&Tropical::zero(), &a), Dist::INF);
    }

    #[test]
    fn tropical_distributes() {
        // a + min(b, c) == min(a + b, a + c)
        let (a, b, c) = (Dist::new(3), Dist::new(7), Dist::new(2));
        let left = Tropical::mul(&a, &Tropical::add(&b, &c));
        let right = Tropical::add(&Tropical::mul(&a, &b), &Tropical::mul(&a, &c));
        assert_eq!(left, right);
    }

    #[test]
    fn boolean_semiring() {
        assert!(!BoolSemiring::zero());
        assert!(BoolSemiring::one());
        assert!(BoolSemiring::add(&true, &false));
        assert!(!BoolSemiring::mul(&true, &false));
    }
}
