//! Algebraic structures for Maximal Frontier Betweenness Centrality (MFBC).
//!
//! The MFBC paper (Solomonik, Besta, Vella, Hoefler — SC'17) formulates
//! betweenness centrality as generalized sparse matrix multiplication
//! `C = A •⟨⊕,f⟩ B`, where `⊕` is a *commutative monoid* on the output
//! domain and `f` is an arbitrary bivariate map between (possibly
//! different) input domains. Using monoids instead of semirings is the
//! paper's first idea (§3): semirings force both operands into one set,
//! while MFBC multiplies a matrix of *multpaths* (or *centpaths*) by a
//! matrix of edge weights.
//!
//! This crate provides:
//!
//! * [`weight`] — the weight domain `W ⊂ ℝ ∪ {∞}` as a saturating
//!   integer distance type with an explicit infinity,
//! * [`monoid`] — [`Monoid`] /
//!   [`CommutativeMonoid`] traits plus stock
//!   instances (min, max, sum, ...),
//! * [`semiring`] — the classical [`Semiring`]
//!   abstraction and the tropical semiring, used by the BFS/baseline
//!   algorithms and for contrast with the monoid formulation,
//! * [`multpath`] — the multpath monoid `(M, ⊕)` of §4.1.1 carrying
//!   (shortest-path weight, multiplicity),
//! * [`centpath`] — the centpath monoid `(C, ⊗)` of §4.2.1 carrying
//!   (weight, partial centrality factor, predecessor counter),
//! * [`action`] — monoid actions of `(W, +)` on multpaths/centpaths:
//!   the Bellman–Ford action `f` (§4.1.2) and Brandes action `g`
//!   (§4.2.2),
//! * [`kernel`] — [`SpMulKernel`], the `⟨⊕,f⟩`
//!   pair that drives every generalized sparse matrix product in the
//!   workspace (the analogue of CTF's `Kernel<W,M,M,u,f>`).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod action;
pub mod centpath;
pub mod kernel;
pub mod monoid;
pub mod multpath;
pub mod semiring;
pub mod weight;

pub use action::{BellmanFordAction, BrandesAction, MonoidAction};
pub use centpath::{Centpath, CentpathMonoid};
pub use kernel::SpMulKernel;
pub use monoid::{CommutativeMonoid, Monoid};
pub use multpath::{Multpath, MultpathMonoid};
pub use semiring::{Semiring, Tropical};
pub use weight::Dist;
