//! Generalized matrix-multiplication kernels `⟨⊕, f⟩` — §3.
//!
//! A kernel bundles the bivariate map `f : D_A × D_B → D_C` with the
//! commutative monoid `(D_C, ⊕)` that accumulates products:
//!
//! ```text
//! C(i,j) = ⊕_k f(A(i,k), B(k,j))
//! ```
//!
//! This is the workspace analogue of CTF's
//! `Kernel<W,M,M,u,f>` (§6.1 of the paper): because the kernel is a
//! zero-sized type, every sparse matrix multiplication in
//! `mfbc-sparse`/`mfbc-tensor` monomorphizes into a specialized loop
//! with no function-pointer indirection.

use crate::centpath::{Centpath, CentpathMonoid};
use crate::monoid::{CommutativeMonoid, MinDist, Monoid, SumF64};
use crate::multpath::{Multpath, MultpathMonoid};
use crate::semiring::Semiring;
use crate::weight::Dist;

/// A `⟨⊕, f⟩` pair driving a generalized sparse matrix product.
///
/// `mul` returns `Option` so a kernel can *annihilate*: a `None`
/// result contributes nothing to the accumulation, exactly as a
/// semiring zero product would. This is how `∞`-weight combinations
/// stay out of sparse outputs.
pub trait SpMulKernel: Copy + Default + Send + Sync + 'static {
    /// Element type of the left operand matrix.
    type Left: Clone + PartialEq + Send + Sync + std::fmt::Debug;
    /// Element type of the right operand matrix.
    type Right: Clone + PartialEq + Send + Sync + std::fmt::Debug;
    /// The commutative monoid `(D_C, ⊕)` accumulating products.
    type Acc: CommutativeMonoid;

    /// The map `f`; `None` means the product is annihilated.
    fn mul(a: &Self::Left, b: &Self::Right) -> Option<<Self::Acc as Monoid>::Elem>;
}

/// Output element type of a kernel.
pub type KernelOut<K> = <<K as SpMulKernel>::Acc as Monoid>::Elem;

/// The MFBF kernel `•⟨⊕,f⟩`: multpath frontier × adjacency weights,
/// with the Bellman–Ford action `f((w,m), e) = (w+e, m)` and the
/// multpath monoid `⊕` (Algorithm 1, line 4).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BellmanFordKernel;

impl SpMulKernel for BellmanFordKernel {
    type Left = Multpath;
    type Right = Dist;
    type Acc = MultpathMonoid;

    #[inline]
    fn mul(a: &Multpath, b: &Dist) -> Option<Multpath> {
        if !a.is_path() || !b.is_finite() {
            return None;
        }
        Some(Multpath {
            w: a.w + *b,
            m: a.m,
        })
    }
}

/// The MFBr kernel `•⟨⊗,g⟩`: centpath frontier × transposed adjacency,
/// with the Brandes action `g((w,p,c), e) = (w−e, p, c)` and the
/// centpath monoid `⊗` (Algorithm 2, line 6).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BrandesKernel;

impl SpMulKernel for BrandesKernel {
    type Left = Centpath;
    type Right = Dist;
    type Acc = CentpathMonoid;

    #[inline]
    fn mul(a: &Centpath, b: &Dist) -> Option<Centpath> {
        if a.is_none() || !b.is_finite() {
            return None;
        }
        match a.w.checked_back(*b) {
            Some(w) if w.is_finite() => Some(Centpath { w, p: a.p, c: a.c }),
            _ => None,
        }
    }
}

/// A plain semiring product `C(i,j) = ⊕_k A(i,k) ⊗ B(k,j)`, expressed
/// as a kernel. Used by baseline algorithms (tropical BFS/APSP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SemiringKernel<S: Semiring>(std::marker::PhantomData<S>);

impl<S: Semiring> Default for SemiringKernel<S> {
    fn default() -> Self {
        SemiringKernel(std::marker::PhantomData)
    }
}

impl<S: Semiring> SpMulKernel for SemiringKernel<S> {
    type Left = S::Elem;
    type Right = S::Elem;
    type Acc = S::Add;

    #[inline]
    fn mul(a: &S::Elem, b: &S::Elem) -> Option<S::Elem> {
        let c = S::mul(a, b);
        if S::Add::is_identity(&c) {
            None
        } else {
            Some(c)
        }
    }
}

/// Tropical min-plus kernel over [`Dist`] — shorthand for
/// `SemiringKernel<Tropical>`.
pub type TropicalKernel = SemiringKernel<crate::semiring::Tropical>;

/// BFS path-counting kernel for the CombBLAS-style baseline: a
/// frontier of path counts (`f64`) times the (unweighted) adjacency
/// structure, summing counts — `σ̄` propagation in batched Brandes.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CountKernel;

impl SpMulKernel for CountKernel {
    type Left = f64;
    type Right = Dist;
    type Acc = SumF64;

    #[inline]
    fn mul(a: &f64, b: &Dist) -> Option<f64> {
        if *a == 0.0 || !b.is_finite() {
            None
        } else {
            Some(*a)
        }
    }
}

/// Min-plus kernel where the left operand is a [`Multpath`] and the
/// right a weight, producing plain distances. Used by test oracles to
/// cross-check MFBF distances without multiplicities.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DistOfMultpathKernel;

impl SpMulKernel for DistOfMultpathKernel {
    type Left = Multpath;
    type Right = Dist;
    type Acc = MinDist;

    #[inline]
    fn mul(a: &Multpath, b: &Dist) -> Option<Dist> {
        let w = a.w + *b;
        if w.is_finite() {
            Some(w)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bellman_ford_kernel_extends_paths() {
        let t = Multpath::new(Dist::new(3), 4.0);
        assert_eq!(
            BellmanFordKernel::mul(&t, &Dist::new(2)),
            Some(Multpath::new(Dist::new(5), 4.0))
        );
    }

    #[test]
    fn bellman_ford_kernel_annihilates_infinities() {
        let t = Multpath::new(Dist::new(3), 4.0);
        assert_eq!(BellmanFordKernel::mul(&t, &Dist::INF), None);
        assert_eq!(
            BellmanFordKernel::mul(&Multpath::none(), &Dist::new(2)),
            None
        );
        // The paper's (∞, 1) init entries must not generate products.
        assert_eq!(
            BellmanFordKernel::mul(&Multpath::new(Dist::INF, 1.0), &Dist::new(2)),
            None
        );
    }

    #[test]
    fn brandes_kernel_walks_backwards() {
        let z = Centpath::new(Dist::new(7), 0.5, -1);
        assert_eq!(
            BrandesKernel::mul(&z, &Dist::new(3)),
            Some(Centpath::new(Dist::new(4), 0.5, -1))
        );
        // An edge longer than the anchored path annihilates.
        assert_eq!(BrandesKernel::mul(&z, &Dist::new(9)), None);
        assert_eq!(BrandesKernel::mul(&z, &Dist::INF), None);
    }

    #[test]
    fn tropical_kernel_is_min_plus() {
        assert_eq!(
            TropicalKernel::mul(&Dist::new(2), &Dist::new(3)),
            Some(Dist::new(5))
        );
        assert_eq!(TropicalKernel::mul(&Dist::INF, &Dist::new(3)), None);
    }

    #[test]
    fn count_kernel_propagates_counts() {
        assert_eq!(CountKernel::mul(&3.0, &Dist::ONE), Some(3.0));
        assert_eq!(CountKernel::mul(&0.0, &Dist::ONE), None);
        assert_eq!(CountKernel::mul(&3.0, &Dist::INF), None);
    }
}
