//! Cross-exporter agreement and end-to-end profiler behavior: drive a
//! real `Machine` under a scoped `Profiler`, then check that the JSON
//! profile, the Prometheus text, and the HTML report all carry the
//! same exact per-rank numbers, and that memory high-water marks
//! bound every snapshot.

use std::sync::Arc;

use mfbc_machine::{CollectiveKind, Machine, MachineSpec};
use mfbc_profile::{export, html, prometheus, Profiler};
use mfbc_trace::{emit, scoped, TraceEvent};

fn drive(machine: &Machine) {
    let world = machine.world();
    emit(|| TraceEvent::Superstep {
        phase: "forward",
        batch: 0,
        step: 0,
        frontier_nnz: 37,
        active_rows: 4,
    });
    machine
        .charge_collective(&world, CollectiveKind::Allgather, 4096)
        .expect("allgather");
    machine.charge_compute(0, 100_000);
    machine.charge_compute(1, 50_000);
    emit(|| TraceEvent::Spgemm {
        plan: "1d(A)".to_string(),
        m: 64,
        k: 64,
        n: 8,
        nnz_a: 500,
        nnz_b: 37,
        nnz_c: 120,
        ops: 700,
    });
    emit(|| TraceEvent::Superstep {
        phase: "backward",
        batch: 0,
        step: 0,
        frontier_nnz: 120,
        active_rows: 4,
    });
    machine
        .charge_collective(&world, CollectiveKind::Allreduce, 1024)
        .expect("allreduce");
    machine.charge_alloc(0, 900).expect("alloc");
    machine.release(0, 800);
    machine.charge_alloc(1, 400).expect("alloc");
}

/// Extracts `metric{rank="r"} value` samples from a Prometheus text
/// exposition, returning values keyed by rank in rank order.
fn prom_rank_values(text: &str, metric: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&format!("{metric}{{rank=\"")) else {
            continue;
        };
        let Some((rank, tail)) = rest.split_once("\"}") else {
            continue;
        };
        out.push((
            rank.parse().expect("rank label"),
            tail.trim().parse().expect("sample value"),
        ));
    }
    out.sort_by_key(|&(r, _)| r);
    out
}

#[test]
fn three_exporters_agree_on_per_rank_totals() {
    let machine = Machine::new(MachineSpec::test(4));
    let profiler = Arc::new(Profiler::new());
    scoped(profiler.clone(), || drive(&machine));
    let profile = profiler.finish(&machine);

    assert_eq!(profile.p, 4);
    assert!(profile.ranks.iter().any(|r| r.comp_s > 0.0));

    let json_doc = export::profile_to_json(&profile);
    let html_doc = html::render(&profile);
    let prom_text = prometheus::render(profiler.registry());

    let json_rows = export::parse_rank_rows(&json_doc).expect("parse profile.json");
    let html_rows = html::parse_rank_rows(&html_doc);
    let prom_comm = prom_rank_values(&prom_text, "mfbc_rank_comm_seconds");
    let prom_comp = prom_rank_values(&prom_text, "mfbc_rank_comp_seconds");
    let prom_peak = prom_rank_values(&prom_text, "mfbc_rank_peak_bytes");

    assert_eq!(json_rows.len(), 4);
    assert_eq!(html_rows.len(), 4);
    assert_eq!(prom_comm.len(), 4);

    for r in 0..4 {
        let expect = &profile.ranks[r];
        for (label, rows) in [("json", &json_rows), ("html", &html_rows)] {
            assert_eq!(rows[r].0, r, "{label} rank order");
            assert_eq!(
                rows[r].1.to_bits(),
                expect.comm_s.to_bits(),
                "{label} comm_s rank {r}"
            );
            assert_eq!(
                rows[r].2.to_bits(),
                expect.comp_s.to_bits(),
                "{label} comp_s rank {r}"
            );
            assert_eq!(rows[r].3, expect.peak_bytes, "{label} peak rank {r}");
        }
        assert_eq!(
            prom_comm[r].1.to_bits(),
            expect.comm_s.to_bits(),
            "prom comm rank {r}"
        );
        assert_eq!(
            prom_comp[r].1.to_bits(),
            expect.comp_s.to_bits(),
            "prom comp rank {r}"
        );
        assert_eq!(
            prom_peak[r].1 as u64, expect.peak_bytes,
            "prom peak rank {r}"
        );
    }
}

#[test]
fn profiler_attributes_stream_aggregates() {
    let machine = Machine::new(MachineSpec::test(2));
    let profiler = Arc::new(Profiler::new());
    scoped(profiler.clone(), || drive(&machine));
    let profile = profiler.finish(&machine);

    assert_eq!(profile.supersteps.len(), 2);
    assert_eq!(profile.supersteps[0].phase, "forward");
    assert_eq!(profile.supersteps[0].spgemm_ops, 700);
    assert_eq!(profile.supersteps[0].collectives, 1);
    assert_eq!(profile.supersteps[1].phase, "backward");
    assert_eq!(profile.supersteps[1].collectives, 1);
    assert_eq!(profile.setup_comm_s, 0.0);

    assert_eq!(profile.collectives.len(), 2);
    let share_sum: f64 = profile.collectives.iter().map(|c| c.share).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-12,
        "shares sum to 1, got {share_sum}"
    );

    assert_eq!(profile.plan_mix.len(), 1);
    assert_eq!(profile.plan_mix[0].plan, "1d(A)");
    assert_eq!(profile.plan_mix[0].ops, 700);

    // Stream comm aggregates reconcile with the superstep attribution.
    let step_comm: f64 = profile.supersteps.iter().map(|s| s.comm_s).sum();
    let kind_comm: f64 = profile.collectives.iter().map(|c| c.modeled_s).sum();
    assert_eq!(step_comm.to_bits(), kind_comm.to_bits());
}

#[test]
fn peaks_in_profile_bound_machine_snapshots() {
    let machine = Machine::new(MachineSpec::test(2));
    let profiler = Arc::new(Profiler::new());
    scoped(profiler.clone(), || {
        machine.charge_alloc(0, 1000).expect("alloc");
        machine.release(0, 990);
        machine.charge_alloc(1, 10).expect("alloc");
    });
    let snap = machine.memory_snapshot();
    let profile = profiler.finish(&machine);
    for r in &profile.ranks {
        assert!(r.peak_bytes >= snap.resident()[r.rank]);
        assert!(r.peak_bytes >= r.resident_bytes);
    }
    assert_eq!(profile.ranks[0].peak_bytes, 1000);
    assert_eq!(profile.ranks[0].resident_bytes, 10);
    assert_eq!(profile.max_peak_bytes(), 1000);
}

#[test]
fn disabled_profiler_observes_nothing() {
    let machine = Machine::new(MachineSpec::test(2));
    let profiler = Arc::new(Profiler::new());
    profiler.set_enabled(false);
    scoped(profiler.clone(), || drive(&machine));
    profiler.set_enabled(true);
    let profile = profiler.finish(&machine);
    assert_eq!(profile.events, 0);
    assert!(profile.supersteps.is_empty());
    // Machine-side meters still show up: finish() reads the machine,
    // not the stream.
    assert!(profile.ranks.iter().any(|r| r.comp_s > 0.0));
}

/// Parses Prometheus text-exposition sample lines into
/// `(sample-key, value-string)` pairs, skipping comments and
/// per-bucket histogram series (the JSON/HTML exporters carry
/// buckets in their own shapes).
fn prometheus_samples(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| {
            let (key, value) = l.rsplit_once(' ')?;
            Some((key.to_string(), value.to_string()))
        })
        .filter(|(k, _)| !k.contains("_bucket"))
        .collect()
}

#[test]
fn registry_exporters_agree_bit_for_bit() {
    use mfbc_profile::{MetricKind, MetricsRegistry};
    let reg = MetricsRegistry::new();
    reg.declare(
        "mfbc_serve_mm_cache_hits",
        MetricKind::Gauge,
        "Prepared-adjacency cache hits across requests",
    );
    reg.gauge_set("mfbc_serve_mm_cache_hits", &[], 7.0);
    reg.declare(
        "mfbc_serve_deadline_total",
        MetricKind::Counter,
        "Responses by deadline attainment",
    );
    reg.counter_add("mfbc_serve_deadline_total", &[("result", "met")], 3.0);
    reg.counter_add("mfbc_serve_deadline_total", &[("result", "missed")], 1.0);
    reg.declare(
        "mfbc_serve_queue_wait_modeled_us",
        MetricKind::Histogram,
        "Modeled queue wait per request",
    );
    for v in [0.5, 3.0, 1.0e7] {
        reg.observe("mfbc_serve_queue_wait_modeled_us", &[], v);
    }
    reg.gauge_set("awkward", &[("q", "a\"b\\c")], 0.1 + 0.2);

    let prom = prometheus_samples(&prometheus::render(&reg));
    assert!(!prom.is_empty());

    // HTML: every non-bucket Prometheus sample appears with the
    // byte-identical value string.
    let html_rows = html::parse_registry_samples(&html::render_registry(&reg));
    assert_eq!(html_rows, prom);

    // JSON: parse back and compare bit patterns against the text
    // endpoint's parsed values.
    let doc = export::registry_to_json(&reg);
    let root = mfbc_profile::jsonio::parse(&doc).expect("metrics json parses");
    let families = root
        .get("families")
        .and_then(mfbc_profile::jsonio::Json::as_array)
        .expect("families array");
    let mut json_checked = 0usize;
    for fam in families {
        let name = fam
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        for s in fam
            .get("samples")
            .and_then(mfbc_profile::jsonio::Json::as_array)
            .unwrap()
        {
            if let Some(v) = s.get("value").and_then(|v| v.as_f64()) {
                let (_, text_value) = prom
                    .iter()
                    .find(|(k, _)| k.starts_with(&name))
                    .expect("sample present in text endpoint");
                // For multi-sample families match on the exact value
                // instead: every JSON value must appear verbatim.
                assert!(
                    prom.iter().any(|(k, pv)| k.starts_with(&name)
                        && pv.parse::<f64>().map(f64::to_bits) == Ok(v.to_bits())),
                    "JSON value {v:?} of {name} missing from text endpoint (first match {text_value})"
                );
                json_checked += 1;
            } else {
                let sum = s
                    .get("sum")
                    .and_then(|v| v.as_f64())
                    .expect("histogram sum");
                let count = s.get("count").and_then(|v| v.as_u64()).expect("count");
                assert!(prom
                    .iter()
                    .any(|(k, pv)| k.starts_with(&format!("{name}_sum"))
                        && pv.parse::<f64>().map(f64::to_bits) == Ok(sum.to_bits())));
                assert!(prom
                    .iter()
                    .any(|(k, pv)| k.starts_with(&format!("{name}_count"))
                        && *pv == count.to_string()));
                json_checked += 1;
            }
        }
    }
    assert_eq!(
        json_checked,
        prom.len() - 1,
        "histogram contributes _sum and _count to text"
    );
}
