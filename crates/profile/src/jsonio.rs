//! Minimal hand-rolled JSON: emission helpers shared by the
//! exporters, plus a small recursive-descent parser used to read the
//! committed perf baseline back in. Keeps this crate dependency-free.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (same rules
/// as `mfbc-trace`'s exporter, so the two streams stay consistent).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. `{:?}` round-trips the exact
/// bit pattern, which the baseline's exact-compare policy relies on;
/// non-finite values become `null` as JSON requires.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers below 2⁵³ are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error. Errors carry a byte offset and a short reason.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // emitters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_of_emitted_numbers() {
        for &x in &[0.0, 1.5, -2.25e-9, 1.234_567_890_123_456_7e300, 3.0e-45] {
            let s = num(x);
            let parsed = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "round trip of {s}");
        }
    }

    #[test]
    fn parses_nested_structure() {
        let doc = r#"{"a": [1, 2.5, "x\"y"], "b": {"c": null, "d": true}, "e": -3e2}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\"y")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(-300.0));
    }

    #[test]
    fn escaped_strings_round_trip() {
        let original = "plan \"cannon(q=4)\",\nwith\ttabs\\slashes\u{1}";
        let doc = format!("\"{}\"", esc(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn u64_exactness_window() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
