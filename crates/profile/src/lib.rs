//! `mfbc-profile`: per-rank profiler, metrics registry, and the perf
//! regression baseline for the MFBC stack.
//!
//! This crate turns the [`mfbc_trace`] event stream plus a finished
//! [`mfbc_machine::Machine`] into three artifacts that all agree on
//! every number:
//!
//! * **Prometheus text** ([`prometheus::render`]) from a
//!   [`MetricsRegistry`] of counters, gauges, and log2 histograms;
//! * **`profile.json`** ([`export::profile_to_json`]), the
//!   machine-readable [`Profile`];
//! * a **self-contained HTML report** ([`html::render`]) with
//!   per-rank utilization bars and a superstep timeline — no scripts,
//!   no external assets.
//!
//! The [`Profiler`] is a streaming [`mfbc_trace::Recorder`]: attach
//! it (alone, or alongside a `MemoryRecorder` via `TeeRecorder`),
//! run, then call [`Profiler::finish`] with the machine to seal the
//! per-rank meters and memory high-water marks into a [`Profile`].
//!
//! [`baseline`] holds the committed-benchmark format and the
//! comparison policy behind `mfbc-cli bench`: deterministic modeled
//! metrics compare bit-exact, wall-clock gets a one-sided noise band.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod export;
pub mod html;
pub mod jsonio;
pub mod profiler;
pub mod prometheus;
pub mod registry;

pub use baseline::{Baseline, BaselineCase, Finding, Severity, DEFAULT_WALL_BAND};
pub use profiler::{
    CollectiveProfile, PlanMixEntry, PoolProfile, Profile, Profiler, RankProfile, RecoveryProfile,
    SuperstepProfile,
};
pub use registry::{MetricKind, MetricsRegistry};
