//! Self-contained single-file HTML report for a [`Profile`]: inline
//! CSS only, no scripts, no external assets. Exact metric values are
//! embedded as `data-*` attributes using the same formatting as the
//! JSON and Prometheus exporters, so the three outputs can be
//! cross-checked mechanically.

use std::fmt::Write as _;

use crate::jsonio::num;
use crate::profiler::Profile;

/// Escapes text for an HTML context (element content and quoted
/// attribute values).
fn esc_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        (part / whole * 100.0).clamp(0.0, 100.0)
    } else {
        0.0
    }
}

const STYLE: &str = "\
body{font-family:system-ui,sans-serif;margin:2em;max-width:70em;color:#222}\
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}\
table{border-collapse:collapse;font-size:0.85em}\
td,th{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\
th{background:#f2f2f2}td.l,th.l{text-align:left}\
.bar{display:flex;height:1.1em;background:#eee;min-width:24em}\
.comm{background:#d9534f;height:100%}\
.comp{background:#5b9bd5;height:100%}\
.tl{display:flex;align-items:flex-end;gap:1px;height:6em;border-bottom:1px solid #999;margin:0.5em 0}\
.tl div{width:0.6em;min-height:1px}\
.fwd{background:#5b9bd5}.bwd{background:#7cb66b}\
.kv{color:#555;font-size:0.9em}\
";

fn header(out: &mut String, p: &Profile) {
    let _ = writeln!(out, "<h1>MFBC profile</h1>");
    let _ = writeln!(
        out,
        "<p class=\"kv\">ranks={} &middot; modeled critical path: comm {} s + comp {} s \
         &middot; total ops {} &middot; load imbalance {} &middot; events {}</p>",
        p.p,
        num(p.critical_comm_s),
        num(p.critical_comp_s),
        p.total_ops,
        num(p.imbalance),
        p.events
    );
}

fn rank_table(out: &mut String, p: &Profile) {
    let max_t = p.max_rank_total_s();
    let _ = writeln!(out, "<h2>Per-rank utilization</h2>");
    let _ = writeln!(
        out,
        "<p class=\"kv\">bar = modeled time vs slowest rank; \
         <span style=\"color:#d9534f\">&#9632;</span> comm, \
         <span style=\"color:#5b9bd5\">&#9632;</span> compute</p>"
    );
    out.push_str(
        "<table><tr><th>rank</th><th class=\"l\">utilization</th><th>comm s</th><th>comp s</th>\
         <th>msgs</th><th>bytes</th><th>peak bytes</th></tr>\n",
    );
    for r in &p.ranks {
        let comm_w = pct(r.comm_s, max_t);
        let comp_w = pct(r.comp_s, max_t);
        let _ = writeln!(
            out,
            "<tr data-rank=\"{}\" data-comm-s=\"{}\" data-comp-s=\"{}\" data-peak-bytes=\"{}\">\
             <td>{}</td>\
             <td class=\"l\"><div class=\"bar\">\
             <div class=\"comm\" style=\"width:{comm_w:.2}%\"></div>\
             <div class=\"comp\" style=\"width:{comp_w:.2}%\"></div></div></td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            r.rank,
            num(r.comm_s),
            num(r.comp_s),
            r.peak_bytes,
            r.rank,
            num(r.comm_s),
            num(r.comp_s),
            r.msgs,
            r.bytes,
            r.peak_bytes
        );
    }
    out.push_str("</table>\n");
}

fn superstep_timeline(out: &mut String, p: &Profile) {
    if p.supersteps.is_empty() {
        return;
    }
    let _ = writeln!(out, "<h2>Superstep timeline</h2>");
    let max_nnz = p
        .supersteps
        .iter()
        .map(|s| s.frontier_nnz)
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let _ = writeln!(
        out,
        "<p class=\"kv\">bar height = frontier nnz; \
         <span style=\"color:#5b9bd5\">&#9632;</span> forward, \
         <span style=\"color:#7cb66b\">&#9632;</span> backward</p>"
    );
    out.push_str("<div class=\"tl\">\n");
    for s in &p.supersteps {
        let h = (s.frontier_nnz as f64 / max_nnz * 100.0).max(1.0);
        let class = if s.phase == "forward" { "fwd" } else { "bwd" };
        let _ = writeln!(
            out,
            "<div class=\"{class}\" style=\"height:{h:.1}%\" \
             title=\"{} b{} s{}: nnz={} comm={} s\"></div>",
            esc_html(&s.phase),
            s.batch,
            s.step,
            s.frontier_nnz,
            num(s.comm_s)
        );
    }
    out.push_str("</div>\n");
    out.push_str(
        "<table><tr><th>phase</th><th>batch</th><th>step</th><th>frontier nnz</th>\
         <th>active rows</th><th>comm s</th><th>collectives</th><th>spgemm ops</th></tr>\n",
    );
    for s in &p.supersteps {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td></tr>",
            esc_html(&s.phase),
            s.batch,
            s.step,
            s.frontier_nnz,
            s.active_rows,
            num(s.comm_s),
            s.collectives,
            s.spgemm_ops
        );
    }
    out.push_str("</table>\n");
}

fn collectives_table(out: &mut String, p: &Profile) {
    if p.collectives.is_empty() {
        return;
    }
    let _ = writeln!(out, "<h2>Collectives</h2>");
    let _ = writeln!(
        out,
        "<p class=\"kv\">setup (pre-superstep) comm: {} s</p>",
        num(p.setup_comm_s)
    );
    out.push_str(
        "<table><tr><th class=\"l\">kind</th><th>count</th><th>modeled s</th>\
         <th>share</th><th>msgs</th><th>bytes</th></tr>\n",
    );
    for c in &p.collectives {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{:.1}%</td><td>{}</td><td>{}</td></tr>",
            esc_html(&c.kind),
            c.count,
            num(c.modeled_s),
            c.share * 100.0,
            c.msgs,
            c.bytes
        );
    }
    out.push_str("</table>\n");
}

fn plan_mix_table(out: &mut String, p: &Profile) {
    if p.plan_mix.is_empty() {
        return;
    }
    let _ = writeln!(out, "<h2>SpGEMM plan mix</h2>");
    let _ = writeln!(
        out,
        "<p class=\"kv\">autotune decisions: {} (candidates rejected by memory gate: {})</p>",
        p.autotune_decisions, p.autotune_infeasible
    );
    out.push_str(
        "<table><tr><th class=\"l\">plan</th><th>count</th><th>ops</th>\
         <th>nnz(C)</th><th>autotune wins</th></tr>\n",
    );
    for m in &p.plan_mix {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc_html(&m.plan),
            m.count,
            m.ops,
            m.nnz_c,
            m.autotune_wins
        );
    }
    out.push_str("</table>\n");
}

fn faults_table(out: &mut String, p: &Profile) {
    if p.faults.is_empty() && p.recoveries.is_empty() {
        return;
    }
    let _ = writeln!(out, "<h2>Faults &amp; recovery</h2>");
    let _ = writeln!(
        out,
        "<p class=\"kv\">modeled seconds of discarded work: {}</p>",
        num(p.wasted_s)
    );
    out.push_str("<table><tr><th class=\"l\">fault kind</th><th>count</th></tr>\n");
    for (kind, count) in &p.faults {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td></tr>",
            esc_html(kind),
            count
        );
    }
    out.push_str("</table>\n");
    if !p.recoveries.is_empty() {
        out.push_str(
            "<table style=\"margin-top:0.6em\"><tr><th class=\"l\">recovery action</th>\
             <th>count</th><th>wasted s</th></tr>\n",
        );
        for r in &p.recoveries {
            let _ = writeln!(
                out,
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td></tr>",
                esc_html(&r.action),
                r.count,
                num(r.wasted_s)
            );
        }
        out.push_str("</table>\n");
    }
}

fn pool_table(out: &mut String, p: &Profile) {
    if p.pool.is_empty() {
        return;
    }
    let _ = writeln!(out, "<h2>Shared-memory pool</h2>");
    out.push_str(
        "<table><tr><th class=\"l\">kernel</th><th>calls</th><th>tasks</th><th>busy &micro;s</th></tr>\n",
    );
    for w in &p.pool {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc_html(&w.kernel),
            w.calls,
            w.tasks,
            w.busy_us
        );
    }
    out.push_str("</table>\n");
}

/// Renders the whole report as one self-contained HTML document.
pub fn render(p: &Profile) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>MFBC profile</title>\n<style>");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n");
    header(&mut out, p);
    rank_table(&mut out, p);
    superstep_timeline(&mut out, p);
    collectives_table(&mut out, p);
    plan_mix_table(&mut out, p);
    faults_table(&mut out, p);
    pool_table(&mut out, p);
    out.push_str("</body>\n</html>\n");
    out
}

/// Extracts the per-rank exact values embedded in a rendered report's
/// `data-*` attributes: `(rank, comm_s, comp_s, peak_bytes)` in
/// document order. Used by tests to cross-check the HTML against the
/// JSON and Prometheus exporters.
pub fn parse_rank_rows(html: &str) -> Vec<(usize, f64, f64, u64)> {
    let mut rows = Vec::new();
    for chunk in html.split("<tr data-rank=\"").skip(1) {
        let attr = |name: &str| -> Option<&str> {
            let key = format!("{name}=\"");
            let start = chunk.find(&key)? + key.len();
            let end = chunk[start..].find('"')? + start;
            Some(&chunk[start..end])
        };
        let rank: usize = match chunk.split('"').next().and_then(|s| s.parse().ok()) {
            Some(r) => r,
            None => continue,
        };
        let (Some(comm), Some(comp), Some(peak)) = (
            attr("data-comm-s").and_then(|s| s.parse::<f64>().ok()),
            attr("data-comp-s").and_then(|s| s.parse::<f64>().ok()),
            attr("data-peak-bytes").and_then(|s| s.parse::<u64>().ok()),
        ) else {
            continue;
        };
        rows.push((rank, comm, comp, peak));
    }
    rows
}

/// Renders a [`MetricsRegistry`] snapshot as a self-contained HTML
/// table. Each sample row carries the exact Prometheus sample key in
/// `data-sample` and the exact value string in `data-value` (same
/// formatting as the text endpoint), so the HTML can be cross-checked
/// mechanically against the other exporters; histograms contribute
/// their `_sum` and `_count` series.
pub fn render_registry(reg: &crate::registry::MetricsRegistry) -> String {
    use crate::prometheus::{fmt_labels, fmt_value};
    use crate::registry::SampleValue;
    let mut out = String::with_capacity(8 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>MFBC metrics</title>\n<style>");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n<h1>MFBC metrics</h1>\n");
    out.push_str(
        "<table><tr><th class=\"l\">sample</th><th class=\"l\">kind</th><th>value</th></tr>\n",
    );
    for fam in reg.snapshot() {
        for (labels, value) in &fam.samples {
            let mut row = |sample: String, value: String| {
                let _ = writeln!(
                    out,
                    "<tr data-sample=\"{}\" data-value=\"{}\"><td class=\"l\" title=\"{}\">{}</td>\
                     <td class=\"l\">{}</td><td>{}</td></tr>",
                    esc_html(&sample),
                    esc_html(&value),
                    esc_html(&fam.help),
                    esc_html(&sample),
                    fam.kind.name(),
                    esc_html(&value)
                );
            };
            match value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => row(
                    format!("{}{}", fam.name, fmt_labels(labels, None)),
                    fmt_value(*v),
                ),
                SampleValue::Histogram(h) => {
                    row(
                        format!("{}_sum{}", fam.name, fmt_labels(labels, None)),
                        fmt_value(h.sum),
                    );
                    row(
                        format!("{}_count{}", fam.name, fmt_labels(labels, None)),
                        h.count.to_string(),
                    );
                }
            }
        }
    }
    out.push_str("</table>\n</body>\n</html>\n");
    out
}

/// Extracts `(sample, value)` strings from a [`render_registry`]
/// document's `data-*` attributes — the mechanical cross-check used
/// by the exporter-agreement tests.
pub fn parse_registry_samples(html: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for chunk in html.split("<tr data-sample=\"").skip(1) {
        let Some(end) = chunk.find('"') else { continue };
        let sample = &chunk[..end];
        let rest = &chunk[end..];
        let key = "data-value=\"";
        let Some(start) = rest.find(key).map(|i| i + key.len()) else {
            continue;
        };
        let Some(vend) = rest[start..].find('"').map(|i| i + start) else {
            continue;
        };
        let unesc = |s: &str| {
            s.replace("&quot;", "\"")
                .replace("&lt;", "<")
                .replace("&gt;", ">")
                .replace("&amp;", "&")
        };
        rows.push((unesc(sample), unesc(&rest[start..vend])));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{RankProfile, SuperstepProfile};

    fn sample() -> Profile {
        Profile {
            p: 2,
            ranks: vec![
                RankProfile {
                    rank: 0,
                    comm_s: 0.125,
                    comp_s: 0.5,
                    msgs: 3,
                    bytes: 100,
                    resident_bytes: 10,
                    peak_bytes: 90,
                },
                RankProfile {
                    rank: 1,
                    comm_s: 0.0625,
                    comp_s: 0.25,
                    msgs: 2,
                    bytes: 60,
                    resident_bytes: 5,
                    peak_bytes: 40,
                },
            ],
            supersteps: vec![SuperstepProfile {
                phase: "forward".into(),
                batch: 0,
                step: 0,
                frontier_nnz: 17,
                active_rows: 4,
                comm_s: 0.01,
                collectives: 2,
                spgemm_ops: 99,
            }],
            ..Profile::default()
        }
    }

    #[test]
    fn report_is_self_contained() {
        let html = render(&sample());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<style>"));
        for needle in ["<script", "http://", "https://", "url("] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn data_attributes_round_trip_exact_values() {
        let p = sample();
        let rows = parse_rank_rows(&render(&p));
        assert_eq!(rows.len(), 2);
        for (row, r) in rows.iter().zip(&p.ranks) {
            assert_eq!(row.0, r.rank);
            assert_eq!(row.1.to_bits(), r.comm_s.to_bits());
            assert_eq!(row.2.to_bits(), r.comp_s.to_bits());
            assert_eq!(row.3, r.peak_bytes);
        }
    }

    #[test]
    fn plan_labels_are_html_escaped() {
        let mut p = sample();
        p.plan_mix.push(crate::profiler::PlanMixEntry {
            plan: "cannon(q=4)<&>".into(),
            count: 1,
            ops: 2,
            nnz_c: 3,
            autotune_wins: 0,
        });
        let html = render(&p);
        assert!(html.contains("cannon(q=4)&lt;&amp;&gt;"));
        assert!(!html.contains("cannon(q=4)<&>"));
    }
}
