//! `profile.json` emission: a machine-readable rendering of a
//! [`Profile`], written with the same number formatting as the
//! Prometheus and HTML exporters so all three agree byte-for-byte on
//! every value.

use std::fmt::Write as _;

use crate::jsonio::{esc, num, parse, Json};
use crate::profiler::Profile;
use crate::registry::{Histogram, MetricsRegistry, SampleValue};

/// Schema version stamped into `profile.json`.
pub const PROFILE_JSON_VERSION: u64 = 1;

/// Schema version stamped into `metrics.json`
/// ([`registry_to_json`]).
pub const METRICS_JSON_VERSION: u64 = 1;

fn push_kv(out: &mut String, indent: &str, key: &str, value: &str, last: bool) {
    let comma = if last { "" } else { "," };
    let _ = writeln!(out, "{indent}\"{key}\": {value}{comma}");
}

/// Serializes a [`Profile`] to pretty-printed JSON.
pub fn profile_to_json(p: &Profile) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    push_kv(
        &mut out,
        "  ",
        "version",
        &PROFILE_JSON_VERSION.to_string(),
        false,
    );
    push_kv(&mut out, "  ", "p", &p.p.to_string(), false);
    push_kv(&mut out, "  ", "events", &p.events.to_string(), false);
    push_kv(&mut out, "  ", "imbalance", &num(p.imbalance), false);
    let _ = writeln!(
        out,
        "  \"critical\": {{\"comm_s\": {}, \"comp_s\": {}, \"total_ops\": {}}},",
        num(p.critical_comm_s),
        num(p.critical_comp_s),
        p.total_ops
    );
    push_kv(&mut out, "  ", "setup_comm_s", &num(p.setup_comm_s), false);
    push_kv(&mut out, "  ", "wasted_s", &num(p.wasted_s), false);
    let _ = writeln!(
        out,
        "  \"autotune\": {{\"decisions\": {}, \"infeasible\": {}}},",
        p.autotune_decisions, p.autotune_infeasible
    );

    out.push_str("  \"ranks\": [\n");
    for (i, r) in p.ranks.iter().enumerate() {
        let comma = if i + 1 == p.ranks.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"rank\": {}, \"comm_s\": {}, \"comp_s\": {}, \"msgs\": {}, \"bytes\": {}, \"resident_bytes\": {}, \"peak_bytes\": {}}}{comma}",
            r.rank,
            num(r.comm_s),
            num(r.comp_s),
            r.msgs,
            r.bytes,
            r.resident_bytes,
            r.peak_bytes
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"collectives\": [\n");
    for (i, c) in p.collectives.iter().enumerate() {
        let comma = if i + 1 == p.collectives.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"count\": {}, \"modeled_s\": {}, \"msgs\": {}, \"bytes\": {}, \"share\": {}}}{comma}",
            esc(&c.kind),
            c.count,
            num(c.modeled_s),
            c.msgs,
            c.bytes,
            num(c.share)
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"supersteps\": [\n");
    for (i, s) in p.supersteps.iter().enumerate() {
        let comma = if i + 1 == p.supersteps.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"phase\": \"{}\", \"batch\": {}, \"step\": {}, \"frontier_nnz\": {}, \"active_rows\": {}, \"comm_s\": {}, \"collectives\": {}, \"spgemm_ops\": {}}}{comma}",
            esc(&s.phase),
            s.batch,
            s.step,
            s.frontier_nnz,
            s.active_rows,
            num(s.comm_s),
            s.collectives,
            s.spgemm_ops
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"plan_mix\": [\n");
    for (i, m) in p.plan_mix.iter().enumerate() {
        let comma = if i + 1 == p.plan_mix.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"plan\": \"{}\", \"count\": {}, \"ops\": {}, \"nnz_c\": {}, \"autotune_wins\": {}}}{comma}",
            esc(&m.plan),
            m.count,
            m.ops,
            m.nnz_c,
            m.autotune_wins
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"faults\": [\n");
    for (i, (kind, count)) in p.faults.iter().enumerate() {
        let comma = if i + 1 == p.faults.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"count\": {}}}{comma}",
            esc(kind),
            count
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"recoveries\": [\n");
    for (i, r) in p.recoveries.iter().enumerate() {
        let comma = if i + 1 == p.recoveries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"action\": \"{}\", \"count\": {}, \"wasted_s\": {}}}{comma}",
            esc(&r.action),
            r.count,
            num(r.wasted_s)
        );
    }
    out.push_str("  ],\n");

    out.push_str("  \"pool\": [\n");
    for (i, w) in p.pool.iter().enumerate() {
        let comma = if i + 1 == p.pool.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"calls\": {}, \"tasks\": {}, \"busy_us\": {}}}{comma}",
            esc(&w.kernel),
            w.calls,
            w.tasks,
            w.busy_us
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn labels_obj(labels: &[(String, String)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\": \"{}\"", esc(k), esc(v));
    }
    s.push('}');
    s
}

fn histogram_json(h: &Histogram) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "\"count\": {}, \"sum\": {}, \"overflow\": {}, \"buckets\": [",
        h.count,
        num(h.sum),
        h.overflow
    );
    for (i, n) in h.buckets.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{n}");
    }
    s.push(']');
    s
}

/// Serializes a [`MetricsRegistry`] snapshot to JSON with the same
/// exact number formatting as the Prometheus exporter, so the two
/// documents agree bit-for-bit on every value. Families with no
/// samples are omitted (matching [`crate::prometheus::render`]);
/// histogram buckets are the non-cumulative per-bucket counts with
/// implied bounds `2^i`.
pub fn registry_to_json(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    push_kv(
        &mut out,
        "  ",
        "metrics_version",
        &METRICS_JSON_VERSION.to_string(),
        false,
    );
    out.push_str("  \"families\": [\n");
    let families: Vec<_> = reg
        .snapshot()
        .into_iter()
        .filter(|f| !f.samples.is_empty())
        .collect();
    for (i, fam) in families.iter().enumerate() {
        let comma = if i + 1 == families.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"help\": \"{}\", \"samples\": [",
            esc(&fam.name),
            fam.kind.name(),
            esc(&fam.help)
        );
        for (j, (labels, value)) in fam.samples.iter().enumerate() {
            let scomma = if j + 1 == fam.samples.len() { "" } else { "," };
            let body = match value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    format!("\"value\": {}", num(*v))
                }
                SampleValue::Histogram(h) => histogram_json(h),
            };
            let _ = writeln!(
                out,
                "      {{\"labels\": {}, {body}}}{scomma}",
                labels_obj(labels)
            );
        }
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Parses a `profile.json` document back into the fields the tests
/// and tools need (per-rank rows). Returns `(rank, comm_s, comp_s,
/// peak_bytes)` tuples in rank order.
pub fn parse_rank_rows(doc: &str) -> Result<Vec<(usize, f64, f64, u64)>, String> {
    let v = parse(doc)?;
    let ranks = v
        .get("ranks")
        .and_then(Json::as_array)
        .ok_or("profile.json missing `ranks`")?;
    ranks
        .iter()
        .map(|r| {
            let rank = r
                .get("rank")
                .and_then(Json::as_u64)
                .ok_or("rank row missing `rank`")? as usize;
            let comm = r
                .get("comm_s")
                .and_then(Json::as_f64)
                .ok_or("rank row missing `comm_s`")?;
            let comp = r
                .get("comp_s")
                .and_then(Json::as_f64)
                .ok_or("rank row missing `comp_s`")?;
            let peak = r
                .get("peak_bytes")
                .and_then(Json::as_u64)
                .ok_or("rank row missing `peak_bytes`")?;
            Ok((rank, comm, comp, peak))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profile, RankProfile};

    fn sample_profile() -> Profile {
        Profile {
            p: 2,
            ranks: vec![
                RankProfile {
                    rank: 0,
                    comm_s: 0.125,
                    comp_s: 0.5,
                    msgs: 10,
                    bytes: 4096,
                    resident_bytes: 100,
                    peak_bytes: 900,
                },
                RankProfile {
                    rank: 1,
                    comm_s: 0.0625,
                    comp_s: 0.25,
                    msgs: 8,
                    bytes: 2048,
                    resident_bytes: 50,
                    peak_bytes: 700,
                },
            ],
            critical_comm_s: 0.125,
            critical_comp_s: 0.5,
            total_ops: 1234,
            imbalance: 1.2,
            ..Profile::default()
        }
    }

    #[test]
    fn json_round_trips_rank_rows_exactly() {
        let p = sample_profile();
        let doc = profile_to_json(&p);
        let rows = parse_rank_rows(&doc).unwrap();
        assert_eq!(rows.len(), 2);
        for (row, r) in rows.iter().zip(&p.ranks) {
            assert_eq!(row.0, r.rank);
            assert_eq!(row.1.to_bits(), r.comm_s.to_bits());
            assert_eq!(row.2.to_bits(), r.comp_s.to_bits());
            assert_eq!(row.3, r.peak_bytes);
        }
    }

    #[test]
    fn emitted_document_is_valid_json() {
        let doc = profile_to_json(&sample_profile());
        let v = crate::jsonio::parse(&doc).unwrap();
        assert_eq!(
            v.get("version").and_then(crate::jsonio::Json::as_u64),
            Some(1)
        );
        assert_eq!(v.get("p").and_then(crate::jsonio::Json::as_u64), Some(2));
        assert_eq!(
            v.get("critical")
                .and_then(|c| c.get("total_ops"))
                .and_then(crate::jsonio::Json::as_u64),
            Some(1234)
        );
    }
}
