//! Prometheus text-exposition exporter for a [`MetricsRegistry`]
//! snapshot. The output is byte-deterministic for a given registry
//! state (families sorted by name, samples by label set), which the
//! golden tests pin exactly.

use std::fmt::Write as _;

use crate::registry::{FamilySnapshot, Histogram, Labels, MetricsRegistry, SampleValue};

/// Escapes a label value per the exposition format (`\\`, `\"`, `\n`).
fn esc_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP text (`\\` and line feeds only, per the format).
fn esc_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value. Prometheus accepts scientific notation;
/// `{:?}` round-trips the exact f64 so the text endpoint, the JSON
/// profile, and the HTML report all print identical numbers.
pub(crate) fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a label set, with an optional extra (`le`) label appended.
pub(crate) fn fmt_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", esc_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", esc_label(v));
    }
    out.push('}');
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &Labels, h: &Histogram) {
    let mut cumulative = 0u64;
    for (b, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let bound = Histogram::bound(b).to_string();
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            fmt_labels(labels, Some(("le", &bound)))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        fmt_labels(labels, Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        fmt_labels(labels, None),
        fmt_value(h.sum)
    );
    let _ = writeln!(out, "{name}_count{} {}", fmt_labels(labels, None), h.count);
}

fn render_family(out: &mut String, fam: &FamilySnapshot) {
    if fam.samples.is_empty() {
        return;
    }
    if !fam.help.is_empty() {
        let _ = writeln!(out, "# HELP {} {}", fam.name, esc_help(&fam.help));
    }
    let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.name());
    for (labels, value) in &fam.samples {
        match value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    fam.name,
                    fmt_labels(labels, None),
                    fmt_value(*v)
                );
            }
            SampleValue::Histogram(h) => render_histogram(out, &fam.name, labels, h),
        }
    }
}

/// Renders the whole registry in Prometheus text exposition format.
/// Families with no samples (declared but never touched) are omitted.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for fam in registry.snapshot() {
        render_family(&mut out, &fam);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricKind, LOG2_BUCKETS};
    use proptest::prelude::*;

    #[test]
    fn golden_counters_and_gauges() {
        let r = MetricsRegistry::new();
        r.declare(
            "mfbc_collectives_total",
            MetricKind::Counter,
            "Collective invocations by kind",
        );
        r.counter_add("mfbc_collectives_total", &[("kind", "allgather")], 3.0);
        r.counter_add("mfbc_collectives_total", &[("kind", "allreduce")], 1.0);
        r.gauge_set("mfbc_load_imbalance", &[], 1.25);
        r.gauge_set("mfbc_rank_comm_seconds", &[("rank", "0")], 0.0625);
        let expected = "\
# HELP mfbc_collectives_total Collective invocations by kind
# TYPE mfbc_collectives_total counter
mfbc_collectives_total{kind=\"allgather\"} 3.0
mfbc_collectives_total{kind=\"allreduce\"} 1.0
# TYPE mfbc_load_imbalance gauge
mfbc_load_imbalance 1.25
# TYPE mfbc_rank_comm_seconds gauge
mfbc_rank_comm_seconds{rank=\"0\"} 0.0625
";
        assert_eq!(render(&r), expected);
    }

    #[test]
    fn golden_histogram_is_cumulative() {
        let r = MetricsRegistry::new();
        r.declare("bytes", MetricKind::Histogram, "payload bytes");
        for v in [1.0, 2.0, 3.0] {
            r.observe("bytes", &[], v);
        }
        let text = render(&r);
        assert!(text.starts_with("# HELP bytes payload bytes\n# TYPE bytes histogram\n"));
        assert!(text.contains("bytes_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("bytes_bucket{le=\"2\"} 2\n"), "{text}");
        assert!(text.contains("bytes_bucket{le=\"4\"} 3\n"), "{text}");
        assert!(text.contains("bytes_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.ends_with("bytes_sum 6.0\nbytes_count 3\n"), "{text}");
        // Every finite bucket line present: LOG2_BUCKETS + the +Inf line.
        let buckets = text.matches("bytes_bucket{").count();
        assert_eq!(buckets, LOG2_BUCKETS + 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_add("x_total", &[("plan", "cannon(q=4) \"odd\\name\"\n")], 1.0);
        let text = render(&r);
        assert!(
            text.contains("x_total{plan=\"cannon(q=4) \\\"odd\\\\name\\\"\\n\"} 1.0"),
            "{text}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite 3 property: for any observation sequence, the
        /// non-cumulative bucket counts (incl. overflow) sum to the
        /// histogram's observation counter, and the rendered +Inf
        /// bucket equals `_count`.
        #[test]
        fn histogram_buckets_sum_to_count(values in proptest::collection::vec(0u64..1u64 << 40, 0..200)) {
            let r = MetricsRegistry::new();
            for &v in &values {
                r.observe("h", &[], v as f64);
            }
            let snap = r.snapshot();
            if values.is_empty() {
                prop_assert!(snap.is_empty() || snap[0].samples.is_empty());
            } else {
                let SampleValue::Histogram(h) = &snap[0].samples[0].1 else {
                    panic!("not a histogram");
                };
                let bucket_sum: u64 = h.buckets.iter().sum::<u64>() + h.overflow;
                prop_assert_eq!(bucket_sum, h.count);
                prop_assert_eq!(h.count, values.len() as u64);

                let text = render(&r);
                let inf_line = format!("h_bucket{{le=\"+Inf\"}} {}\n", h.count);
                let count_line = format!("h_count {}\n", h.count);
                prop_assert!(text.contains(&inf_line));
                prop_assert!(text.contains(&count_line));
            }
        }
    }
}
