//! The [`Profiler`]: a [`Recorder`] sink that aggregates the trace
//! stream into a [`Profile`] — per-rank and per-superstep breakdowns,
//! plan mix, collective shares, and fault/recovery waste.
//!
//! The profiler is streaming: it keeps O(kinds + supersteps) state,
//! never the raw event log, so it can ride along any run that the
//! `MemoryRecorder` would be too heavy for. It also mirrors its
//! aggregates into a [`MetricsRegistry`] for Prometheus export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mfbc_machine::Machine;
use mfbc_trace::{Recorder, TraceEvent};

use crate::registry::{MetricKind, MetricsRegistry};

/// Aggregate over one collective kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CollectiveProfile {
    /// Collective kind name (e.g. `allgather`).
    pub kind: String,
    /// Invocations observed.
    pub count: u64,
    /// Summed modeled seconds across invocations.
    pub modeled_s: f64,
    /// Summed critical-path messages.
    pub msgs: u64,
    /// Summed critical-path bytes.
    pub bytes: u64,
    /// Share of this kind in the summed modeled collective seconds
    /// (0 when no collective time was observed).
    pub share: f64,
}

/// Aggregate over one SpGEMM plan label.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanMixEntry {
    /// Plan label (e.g. `1d(A)`, `cannon(q=4)`).
    pub plan: String,
    /// Kernel invocations that used this plan.
    pub count: u64,
    /// Summed useful multiply–add operations.
    pub ops: u64,
    /// Summed output nonzeros.
    pub nnz_c: u64,
    /// Times the autotuner picked this plan as winner.
    pub autotune_wins: u64,
}

/// One MFBC superstep with the communication attributed to it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuperstepProfile {
    /// `forward` or `backward`.
    pub phase: String,
    /// Source-batch index.
    pub batch: usize,
    /// Iteration within the phase.
    pub step: usize,
    /// Frontier nonzeros at the start of the step.
    pub frontier_nnz: u64,
    /// Active frontier rows at the start of the step.
    pub active_rows: u64,
    /// Modeled seconds of collectives attributed to this step.
    pub comm_s: f64,
    /// Collectives attributed to this step.
    pub collectives: u64,
    /// SpGEMM operations attributed to this step.
    pub spgemm_ops: u64,
}

/// Aggregate over one recovery action kind.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryProfile {
    /// Action name (`retry`, `replan`, `halve-batch`, `restore`).
    pub action: String,
    /// Times the action was taken.
    pub count: u64,
    /// Summed modeled seconds of discarded work.
    pub wasted_s: f64,
}

/// Aggregate over one pool kernel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolProfile {
    /// Kernel name (e.g. `spgemm`).
    pub kernel: String,
    /// Fan-out calls observed.
    pub calls: u64,
    /// Total chunks executed.
    pub tasks: u64,
    /// Total busy microseconds across participants.
    pub busy_us: u64,
}

/// Per-rank modeled costs and memory, pulled from the [`Machine`] at
/// [`Profiler::finish`] time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankProfile {
    /// Rank id.
    pub rank: usize,
    /// Modeled communication seconds on this rank's dependent path.
    pub comm_s: f64,
    /// Modeled computation seconds.
    pub comp_s: f64,
    /// Critical-path messages.
    pub msgs: u64,
    /// Critical-path bytes.
    pub bytes: u64,
    /// Resident bytes at finish time.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes over the whole run.
    pub peak_bytes: u64,
}

impl RankProfile {
    /// Modeled *busy* seconds for this rank (comm + compute). The
    /// meters behind this are mode-independent: under overlapped
    /// accounting a rank's causal clock can be smaller than its busy
    /// time because in-flight collective bandwidth hides under
    /// compute, but the work charged here is the same either way.
    pub fn total_s(&self) -> f64 {
        self.comm_s + self.comp_s
    }
}

/// The finished profile: everything the exporters render.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Ranks in the machine the profile was finished against.
    pub p: usize,
    /// Per-rank breakdown, indexed by rank.
    pub ranks: Vec<RankProfile>,
    /// Modeled comm seconds on the critical path (max over ranks).
    pub critical_comm_s: f64,
    /// Modeled compute seconds on the critical path.
    pub critical_comp_s: f64,
    /// Total useful operations across ranks.
    pub total_ops: u64,
    /// Load imbalance: max over ranks of modeled total time divided
    /// by the mean (1.0 = perfectly balanced; 0 when no time accrued).
    pub imbalance: f64,
    /// Per-collective-kind aggregates, sorted by kind.
    pub collectives: Vec<CollectiveProfile>,
    /// Modeled collective seconds observed before the first superstep
    /// (distribution / setup traffic).
    pub setup_comm_s: f64,
    /// Supersteps in emission order.
    pub supersteps: Vec<SuperstepProfile>,
    /// SpGEMM plan mix, sorted by plan label.
    pub plan_mix: Vec<PlanMixEntry>,
    /// Autotune decisions observed.
    pub autotune_decisions: u64,
    /// Candidates rejected by the memory gate across decisions.
    pub autotune_infeasible: u64,
    /// Fault counts by kind, sorted by kind.
    pub faults: Vec<(String, u64)>,
    /// Recovery actions, sorted by action.
    pub recoveries: Vec<RecoveryProfile>,
    /// Modeled seconds of work discarded across all recoveries.
    pub wasted_s: f64,
    /// Shared-memory pool aggregates, sorted by kernel.
    pub pool: Vec<PoolProfile>,
    /// Trace events consumed.
    pub events: u64,
}

impl Profile {
    /// Largest modeled per-rank total time (the utilization
    /// denominator; 0 when no rank accrued time).
    pub fn max_rank_total_s(&self) -> f64 {
        self.ranks
            .iter()
            .map(RankProfile::total_s)
            .fold(0.0, f64::max)
    }

    /// Summed modeled collective seconds across kinds.
    pub fn collective_s(&self) -> f64 {
        self.collectives.iter().map(|c| c.modeled_s).sum()
    }

    /// Largest per-rank memory high-water mark in bytes.
    pub fn max_peak_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.peak_bytes).max().unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct CollAgg {
    count: u64,
    modeled_s: f64,
    msgs: u64,
    bytes: u64,
}

#[derive(Debug, Default)]
struct PlanAgg {
    count: u64,
    ops: u64,
    nnz_c: u64,
    wins: u64,
}

#[derive(Debug, Default)]
struct State {
    events: u64,
    collectives: BTreeMap<String, CollAgg>,
    setup_comm_s: f64,
    supersteps: Vec<SuperstepProfile>,
    plan_mix: BTreeMap<String, PlanAgg>,
    autotune_decisions: u64,
    autotune_infeasible: u64,
    faults: BTreeMap<String, u64>,
    recoveries: BTreeMap<String, (u64, f64)>,
    pool: BTreeMap<String, (u64, u64, u64)>,
}

/// A [`Recorder`] that aggregates trace events into a [`Profile`].
#[derive(Debug)]
pub struct Profiler {
    enabled: AtomicBool,
    registry: Arc<MetricsRegistry>,
    state: Mutex<State>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh, enabled profiler with its own registry.
    pub fn new() -> Profiler {
        Profiler::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// A profiler writing into a caller-supplied registry (so several
    /// instruments can share one Prometheus exposition).
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Profiler {
        declare_metrics(&registry);
        Profiler {
            enabled: AtomicBool::new(true),
            registry,
            state: Mutex::new(State::default()),
        }
    }

    /// The registry this profiler mirrors its aggregates into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Gates event intake; a disabled profiler is skipped by
    /// `TeeRecorder` before any clone happens.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Seals the stream aggregates with the machine's per-rank meters
    /// and memory high-water marks, producing the final [`Profile`].
    ///
    /// Per-rank numbers come from the machine meters, which are
    /// authoritative (the timeline analyzer independently rebuilds
    /// them from the rank-attributed trace events and cross-checks
    /// against these); pass the machine the run actually finished on —
    /// after a crash-shrink that is the shrunk machine.
    pub fn finish(&self, machine: &Machine) -> Profile {
        let costs = machine.rank_costs();
        let snap = machine.memory_snapshot();
        let report = machine.report();
        let state = self.state.lock().expect("profiler state lock");

        let ranks: Vec<RankProfile> = costs
            .iter()
            .enumerate()
            .map(|(r, c)| RankProfile {
                rank: r,
                comm_s: c.comm_time,
                comp_s: c.comp_time,
                msgs: c.msgs,
                bytes: c.bytes,
                resident_bytes: snap.resident()[r],
                peak_bytes: snap.peak()[r],
            })
            .collect();

        let totals: Vec<f64> = ranks.iter().map(RankProfile::total_s).collect();
        let max_t = totals.iter().copied().fold(0.0, f64::max);
        let mean_t = if totals.is_empty() {
            0.0
        } else {
            totals.iter().sum::<f64>() / totals.len() as f64
        };
        let imbalance = if mean_t > 0.0 { max_t / mean_t } else { 0.0 };

        let coll_total: f64 = state.collectives.values().map(|a| a.modeled_s).sum();
        let collectives: Vec<CollectiveProfile> = state
            .collectives
            .iter()
            .map(|(kind, a)| CollectiveProfile {
                kind: kind.clone(),
                count: a.count,
                modeled_s: a.modeled_s,
                msgs: a.msgs,
                bytes: a.bytes,
                share: if coll_total > 0.0 {
                    a.modeled_s / coll_total
                } else {
                    0.0
                },
            })
            .collect();

        let plan_mix: Vec<PlanMixEntry> = state
            .plan_mix
            .iter()
            .map(|(plan, a)| PlanMixEntry {
                plan: plan.clone(),
                count: a.count,
                ops: a.ops,
                nnz_c: a.nnz_c,
                autotune_wins: a.wins,
            })
            .collect();

        let recoveries: Vec<RecoveryProfile> = state
            .recoveries
            .iter()
            .map(|(action, &(count, wasted_s))| RecoveryProfile {
                action: action.clone(),
                count,
                wasted_s,
            })
            .collect();
        let wasted_s = recoveries.iter().map(|r| r.wasted_s).sum();

        let pool: Vec<PoolProfile> = state
            .pool
            .iter()
            .map(|(kernel, &(calls, tasks, busy_us))| PoolProfile {
                kernel: kernel.clone(),
                calls,
                tasks,
                busy_us,
            })
            .collect();

        for r in &ranks {
            let rank = r.rank.to_string();
            let l = [("rank", rank.as_str())];
            self.registry
                .gauge_set("mfbc_rank_comm_seconds", &l, r.comm_s);
            self.registry
                .gauge_set("mfbc_rank_comp_seconds", &l, r.comp_s);
            self.registry.gauge_set("mfbc_rank_msgs", &l, r.msgs as f64);
            self.registry
                .gauge_set("mfbc_rank_bytes", &l, r.bytes as f64);
            self.registry
                .gauge_set("mfbc_rank_resident_bytes", &l, r.resident_bytes as f64);
            self.registry
                .gauge_set("mfbc_rank_peak_bytes", &l, r.peak_bytes as f64);
        }
        self.registry
            .gauge_set("mfbc_ranks", &[], ranks.len() as f64);
        self.registry
            .gauge_set("mfbc_load_imbalance", &[], imbalance);
        self.registry
            .gauge_set("mfbc_critical_comm_seconds", &[], report.critical.comm_time);
        self.registry
            .gauge_set("mfbc_critical_comp_seconds", &[], report.critical.comp_time);
        self.registry
            .gauge_set("mfbc_total_ops", &[], report.total_ops as f64);

        Profile {
            p: ranks.len(),
            ranks,
            critical_comm_s: report.critical.comm_time,
            critical_comp_s: report.critical.comp_time,
            total_ops: report.total_ops,
            imbalance,
            collectives,
            setup_comm_s: state.setup_comm_s,
            supersteps: state.supersteps.clone(),
            plan_mix,
            autotune_decisions: state.autotune_decisions,
            autotune_infeasible: state.autotune_infeasible,
            faults: state.faults.iter().map(|(k, &n)| (k.clone(), n)).collect(),
            recoveries,
            wasted_s,
            pool,
            events: state.events,
        }
    }
}

fn declare_metrics(r: &MetricsRegistry) {
    r.declare(
        "mfbc_trace_events_total",
        MetricKind::Counter,
        "Trace events consumed by the profiler",
    );
    r.declare(
        "mfbc_collectives_total",
        MetricKind::Counter,
        "Collective invocations by kind",
    );
    r.declare(
        "mfbc_collective_modeled_seconds_total",
        MetricKind::Counter,
        "Summed modeled collective seconds by kind",
    );
    r.declare(
        "mfbc_collective_payload_bytes",
        MetricKind::Histogram,
        "Per-invocation collective payload bytes",
    );
    r.declare(
        "mfbc_spgemm_total",
        MetricKind::Counter,
        "SpGEMM kernel invocations by plan",
    );
    r.declare(
        "mfbc_spgemm_ops_total",
        MetricKind::Counter,
        "Useful multiply-add operations by plan",
    );
    r.declare(
        "mfbc_frontier_nnz",
        MetricKind::Histogram,
        "Frontier nonzeros at each superstep",
    );
    r.declare(
        "mfbc_supersteps_total",
        MetricKind::Counter,
        "Supersteps by phase",
    );
    r.declare(
        "mfbc_redist_bytes_total",
        MetricKind::Counter,
        "Bytes moved by tensor redistributions, by what moved",
    );
    r.declare(
        "mfbc_autotune_total",
        MetricKind::Counter,
        "Autotune decisions",
    );
    r.declare(
        "mfbc_autotune_wins_total",
        MetricKind::Counter,
        "Autotune wins by plan",
    );
    r.declare("mfbc_faults_total", MetricKind::Counter, "Faults by kind");
    r.declare(
        "mfbc_recovery_total",
        MetricKind::Counter,
        "Recovery actions by action",
    );
    r.declare(
        "mfbc_recovery_wasted_seconds_total",
        MetricKind::Counter,
        "Modeled seconds of work discarded by recoveries",
    );
    r.declare(
        "mfbc_pool_tasks_total",
        MetricKind::Counter,
        "Thread-pool chunks executed by kernel",
    );
    r.declare(
        "mfbc_pool_busy_microseconds_total",
        MetricKind::Counter,
        "Thread-pool busy microseconds by kernel",
    );
    r.declare(
        "mfbc_counter_total",
        MetricKind::Counter,
        "Accumulated TraceEvent::Counter samples by name",
    );
    r.declare(
        "mfbc_serve_rounds_total",
        MetricKind::Counter,
        "Coalesced serve rounds observed in the trace",
    );
    r.declare(
        "mfbc_serve_degrade_total",
        MetricKind::Counter,
        "Serve degradation decisions by rung and reason",
    );
    r.declare(
        "mfbc_rank_comm_seconds",
        MetricKind::Gauge,
        "Modeled communication seconds by rank",
    );
    r.declare(
        "mfbc_rank_comp_seconds",
        MetricKind::Gauge,
        "Modeled computation seconds by rank",
    );
    r.declare(
        "mfbc_rank_msgs",
        MetricKind::Gauge,
        "Critical-path messages by rank",
    );
    r.declare(
        "mfbc_rank_bytes",
        MetricKind::Gauge,
        "Critical-path bytes by rank",
    );
    r.declare(
        "mfbc_rank_resident_bytes",
        MetricKind::Gauge,
        "Resident bytes by rank at finish",
    );
    r.declare(
        "mfbc_rank_peak_bytes",
        MetricKind::Gauge,
        "Memory high-water mark by rank",
    );
    r.declare("mfbc_ranks", MetricKind::Gauge, "Ranks in the machine");
    r.declare(
        "mfbc_load_imbalance",
        MetricKind::Gauge,
        "Max over mean of per-rank modeled total seconds",
    );
    r.declare(
        "mfbc_critical_comm_seconds",
        MetricKind::Gauge,
        "Critical-path modeled communication seconds",
    );
    r.declare(
        "mfbc_critical_comp_seconds",
        MetricKind::Gauge,
        "Critical-path modeled computation seconds",
    );
    r.declare(
        "mfbc_total_ops",
        MetricKind::Gauge,
        "Total useful operations",
    );
}

impl Recorder for Profiler {
    fn record(&self, event: TraceEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let reg = &self.registry;
        let mut st = self.state.lock().expect("profiler state lock");
        st.events += 1;
        reg.counter_add("mfbc_trace_events_total", &[], 1.0);
        match event {
            TraceEvent::Collective {
                kind,
                bytes,
                msgs,
                bytes_charged,
                modeled_s,
                ..
            } => {
                let agg = st.collectives.entry(kind.to_string()).or_default();
                agg.count += 1;
                agg.modeled_s += modeled_s;
                agg.msgs += msgs;
                agg.bytes += bytes_charged;
                match st.supersteps.last_mut() {
                    Some(step) => {
                        step.comm_s += modeled_s;
                        step.collectives += 1;
                    }
                    None => st.setup_comm_s += modeled_s,
                }
                let l = [("kind", kind)];
                reg.counter_add("mfbc_collectives_total", &l, 1.0);
                reg.counter_add("mfbc_collective_modeled_seconds_total", &l, modeled_s);
                reg.observe("mfbc_collective_payload_bytes", &[], bytes as f64);
            }
            // Nonblocking collectives carry their full cost on the
            // issue event; the superstep attribution happens at issue
            // so overlapped and blocking runs bucket identically.
            TraceEvent::CollectiveIssue {
                kind,
                bytes,
                msgs,
                bytes_charged,
                modeled_s,
                ..
            } => {
                let agg = st.collectives.entry(kind.to_string()).or_default();
                agg.count += 1;
                agg.modeled_s += modeled_s;
                agg.msgs += msgs;
                agg.bytes += bytes_charged;
                match st.supersteps.last_mut() {
                    Some(step) => {
                        step.comm_s += modeled_s;
                        step.collectives += 1;
                    }
                    None => st.setup_comm_s += modeled_s,
                }
                let l = [("kind", kind)];
                reg.counter_add("mfbc_collectives_total", &l, 1.0);
                reg.counter_add("mfbc_collective_modeled_seconds_total", &l, modeled_s);
                reg.observe("mfbc_collective_payload_bytes", &[], bytes as f64);
            }
            TraceEvent::Spgemm {
                plan, ops, nnz_c, ..
            } => {
                let agg = st.plan_mix.entry(plan.clone()).or_default();
                agg.count += 1;
                agg.ops += ops;
                agg.nnz_c += nnz_c;
                if let Some(step) = st.supersteps.last_mut() {
                    step.spgemm_ops += ops;
                }
                let l = [("plan", plan.as_str())];
                reg.counter_add("mfbc_spgemm_total", &l, 1.0);
                reg.counter_add("mfbc_spgemm_ops_total", &l, ops as f64);
            }
            TraceEvent::Redist {
                what, bytes_moved, ..
            } => {
                reg.counter_add(
                    "mfbc_redist_bytes_total",
                    &[("what", what)],
                    bytes_moved as f64,
                );
            }
            TraceEvent::Autotune {
                candidates, winner, ..
            } => {
                st.autotune_decisions += 1;
                st.autotune_infeasible += candidates.iter().filter(|c| !c.feasible).count() as u64;
                st.plan_mix.entry(winner.clone()).or_default().wins += 1;
                reg.counter_add("mfbc_autotune_total", &[], 1.0);
                reg.counter_add(
                    "mfbc_autotune_wins_total",
                    &[("plan", winner.as_str())],
                    1.0,
                );
            }
            TraceEvent::Superstep {
                phase,
                batch,
                step,
                frontier_nnz,
                active_rows,
            } => {
                st.supersteps.push(SuperstepProfile {
                    phase: phase.to_string(),
                    batch,
                    step,
                    frontier_nnz,
                    active_rows,
                    comm_s: 0.0,
                    collectives: 0,
                    spgemm_ops: 0,
                });
                reg.counter_add("mfbc_supersteps_total", &[("phase", phase)], 1.0);
                reg.observe("mfbc_frontier_nnz", &[], frontier_nnz as f64);
            }
            TraceEvent::Pool {
                kernel,
                tasks,
                busy_us,
                ..
            } => {
                let busy: u64 = busy_us.iter().sum();
                let agg = st.pool.entry(kernel.to_string()).or_default();
                agg.0 += 1;
                agg.1 += tasks;
                agg.2 += busy;
                let l = [("kernel", kernel)];
                reg.counter_add("mfbc_pool_tasks_total", &l, tasks as f64);
                reg.counter_add("mfbc_pool_busy_microseconds_total", &l, busy as f64);
            }
            TraceEvent::Fault { kind, .. } => {
                *st.faults.entry(kind.to_string()).or_default() += 1;
                reg.counter_add("mfbc_faults_total", &[("kind", kind)], 1.0);
            }
            TraceEvent::Recovery {
                action, wasted_s, ..
            } => {
                let agg = st.recoveries.entry(action.to_string()).or_default();
                agg.0 += 1;
                agg.1 += wasted_s;
                reg.counter_add("mfbc_recovery_total", &[("action", action)], 1.0);
                reg.counter_add("mfbc_recovery_wasted_seconds_total", &[], wasted_s);
            }
            TraceEvent::Counter { name, value } => {
                reg.counter_add("mfbc_counter_total", &[("name", name)], value);
            }
            TraceEvent::RoundStart { .. } => {
                reg.counter_add("mfbc_serve_rounds_total", &[], 1.0);
            }
            TraceEvent::DegradeDecision { rung, reason, .. } => {
                reg.counter_add(
                    "mfbc_serve_degrade_total",
                    &[("rung", rung), ("reason", reason)],
                    1.0,
                );
            }
            // Per-rank compute/backoff/shrink attribution is the
            // timeline analyzer's domain; the profiler's per-rank
            // numbers are sealed from the machine meters in `finish`.
            // Request/round provenance beyond the counts above is the
            // serve engine's flight recorder's domain.
            TraceEvent::Compute { .. }
            | TraceEvent::CollectiveWait { .. }
            | TraceEvent::Backoff { .. }
            | TraceEvent::Shrink { .. }
            | TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanEnd { .. }
            | TraceEvent::RequestAdmitted { .. }
            | TraceEvent::RoundEnd { .. }
            | TraceEvent::Log { .. } => {}
        }
    }

    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}
