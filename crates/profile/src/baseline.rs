//! The perf-regression baseline: a committed JSON file of pinned
//! benchmark measurements, plus the noise-aware comparison policy.
//!
//! Threshold policy
//! ----------------
//! Modeled quantities (α–β–γ seconds, critical-path messages/bytes,
//! operation counts, memory high-water marks) are **deterministic**:
//! they are produced by pure f64 arithmetic (`+`, `*`, `max`) and
//! integer bookkeeping over a fixed experiment, so they are compared
//! **bit-exact**. Any difference — faster or slower — fails the gate:
//! an unexplained improvement is drift that must be acknowledged by
//! refreshing the baseline (`--write`), never silently absorbed.
//!
//! Wall-clock seconds are noisy, so they get a one-sided band: only
//! `current > baseline * (1 + band)` fails. Speedups never fail and
//! never require a refresh.

use crate::jsonio::{esc, num, parse, Json};

/// Default wall-clock tolerance band (fraction above baseline that
/// still passes). Generous because CI machines are shared.
pub const DEFAULT_WALL_BAND: f64 = 1.0;

/// One pinned experiment's measurements.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineCase {
    /// Experiment name (stable identifier inside the suite).
    pub name: String,
    /// Modeled communication seconds on the critical path.
    pub modeled_comm_s: f64,
    /// Modeled computation seconds on the critical path.
    pub modeled_comp_s: f64,
    /// Critical-path messages.
    pub msgs: u64,
    /// Critical-path bytes.
    pub bytes: u64,
    /// Total useful operations.
    pub total_ops: u64,
    /// Largest per-rank memory high-water mark in bytes.
    pub max_peak_bytes: u64,
    /// Fraction of the causal makespan gated by communication
    /// segments, from the timeline analyzer's critical path.
    /// Deterministic, so compared bit-exact like the modeled seconds.
    pub critical_comm_share: f64,
    /// Modeled causal makespan in seconds (the timeline's maximum
    /// lane clock). Deterministic, compared bit-exact. Under
    /// overlapped accounting this is where comm/compute overlap
    /// shows up, so the gate pins it directly.
    pub makespan_s: f64,
    /// Measured wall-clock seconds (noisy; band-compared).
    pub wall_s: f64,
}

/// A parsed (or freshly measured) baseline file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Schema version.
    pub version: u64,
    /// Wall-clock band this file was written with.
    pub band: f64,
    /// Pinned cases, in suite order.
    pub cases: Vec<BaselineCase>,
}

/// Schema version written by [`Baseline::to_json`]. Version 2 added
/// `critical_comm_share` (the timeline analyzer's communication share
/// of the causal critical path). Version 3 added `makespan_s` (the
/// modeled causal makespan, pinned bit-exact so communication overlap
/// wins — and regressions — are gated directly).
pub const BASELINE_VERSION: u64 = 3;

/// How badly a comparison failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Current is worse than baseline.
    Regression,
    /// Current differs from baseline in a deterministic metric
    /// without being slower (e.g. an improvement): the baseline is
    /// stale and must be refreshed with `--write`.
    Drift,
}

/// One failed comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Case name.
    pub case: String,
    /// Metric that failed.
    pub metric: &'static str,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
    /// Regression or drift.
    pub severity: Severity,
}

impl Finding {
    /// One-line human rendering.
    pub fn describe(&self) -> String {
        let label = match self.severity {
            Severity::Regression => "REGRESSION",
            Severity::Drift => "DRIFT",
        };
        format!(
            "{label} {}: {} baseline={} current={}",
            self.case, self.metric, self.baseline, self.current
        )
    }
}

impl Baseline {
    /// A baseline wrapping freshly measured cases.
    pub fn new(band: f64, cases: Vec<BaselineCase>) -> Baseline {
        Baseline {
            version: BASELINE_VERSION,
            band,
            cases,
        }
    }

    /// Serializes to the committed JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"wall_band\": {},\n", num(self.band)));
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            let comma = if i + 1 == self.cases.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"modeled_comm_s\": {}, \"modeled_comp_s\": {}, \
                 \"msgs\": {}, \"bytes\": {}, \"total_ops\": {}, \"max_peak_bytes\": {}, \
                 \"critical_comm_share\": {}, \"makespan_s\": {}, \"wall_s\": {}}}{comma}\n",
                esc(&c.name),
                num(c.modeled_comm_s),
                num(c.modeled_comp_s),
                c.msgs,
                c.bytes,
                c.total_ops,
                c.max_peak_bytes,
                num(c.critical_comm_share),
                num(c.makespan_s),
                num(c.wall_s)
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a baseline file.
    pub fn from_json(doc: &str) -> Result<Baseline, String> {
        let v = parse(doc)?;
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("baseline missing `version`")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline version {version} unsupported (expected {BASELINE_VERSION})"
            ));
        }
        let band = v
            .get("wall_band")
            .and_then(Json::as_f64)
            .ok_or("baseline missing `wall_band`")?;
        let cases = v
            .get("cases")
            .and_then(Json::as_array)
            .ok_or("baseline missing `cases`")?
            .iter()
            .map(|c| {
                let field_u64 = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("case missing `{k}`"))
                };
                let field_f64 = |k: &str| {
                    c.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("case missing `{k}`"))
                };
                Ok(BaselineCase {
                    name: c
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("case missing `name`")?
                        .to_string(),
                    modeled_comm_s: field_f64("modeled_comm_s")?,
                    modeled_comp_s: field_f64("modeled_comp_s")?,
                    msgs: field_u64("msgs")?,
                    bytes: field_u64("bytes")?,
                    total_ops: field_u64("total_ops")?,
                    max_peak_bytes: field_u64("max_peak_bytes")?,
                    critical_comm_share: field_f64("critical_comm_share")?,
                    makespan_s: field_f64("makespan_s")?,
                    wall_s: field_f64("wall_s")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Baseline {
            version,
            band,
            cases,
        })
    }

    /// Compares freshly measured `current` cases against this
    /// baseline. `band_override` replaces the file's wall band when
    /// given. An empty result means the gate passes.
    pub fn compare(&self, current: &[BaselineCase], band_override: Option<f64>) -> Vec<Finding> {
        let band = band_override.unwrap_or(self.band);
        let mut findings = Vec::new();

        for cur in current {
            let Some(base) = self.cases.iter().find(|b| b.name == cur.name) else {
                findings.push(Finding {
                    case: cur.name.clone(),
                    metric: "case",
                    baseline: "<absent>".to_string(),
                    current: "measured".to_string(),
                    severity: Severity::Drift,
                });
                continue;
            };
            compare_case(base, cur, band, &mut findings);
        }
        for base in &self.cases {
            if !current.iter().any(|c| c.name == base.name) {
                findings.push(Finding {
                    case: base.name.clone(),
                    metric: "case",
                    baseline: "pinned".to_string(),
                    current: "<missing>".to_string(),
                    severity: Severity::Regression,
                });
            }
        }
        findings
    }
}

fn compare_case(base: &BaselineCase, cur: &BaselineCase, band: f64, out: &mut Vec<Finding>) {
    let mut exact_f64 = |metric: &'static str, b: f64, c: f64| {
        if b.to_bits() != c.to_bits() {
            out.push(Finding {
                case: cur.name.clone(),
                metric,
                baseline: num(b),
                current: num(c),
                severity: if c > b {
                    Severity::Regression
                } else {
                    Severity::Drift
                },
            });
        }
    };
    exact_f64("modeled_comm_s", base.modeled_comm_s, cur.modeled_comm_s);
    exact_f64("modeled_comp_s", base.modeled_comp_s, cur.modeled_comp_s);
    exact_f64(
        "critical_comm_share",
        base.critical_comm_share,
        cur.critical_comm_share,
    );
    exact_f64("makespan_s", base.makespan_s, cur.makespan_s);

    let mut exact_u64 = |metric: &'static str, b: u64, c: u64| {
        if b != c {
            out.push(Finding {
                case: cur.name.clone(),
                metric,
                baseline: b.to_string(),
                current: c.to_string(),
                severity: if c > b {
                    Severity::Regression
                } else {
                    Severity::Drift
                },
            });
        }
    };
    exact_u64("msgs", base.msgs, cur.msgs);
    exact_u64("bytes", base.bytes, cur.bytes);
    exact_u64("total_ops", base.total_ops, cur.total_ops);
    exact_u64("max_peak_bytes", base.max_peak_bytes, cur.max_peak_bytes);

    if cur.wall_s > base.wall_s * (1.0 + band) {
        out.push(Finding {
            case: cur.name.clone(),
            metric: "wall_s",
            baseline: num(base.wall_s),
            current: num(cur.wall_s),
            severity: Severity::Regression,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str) -> BaselineCase {
        BaselineCase {
            name: name.to_string(),
            modeled_comm_s: 0.125,
            modeled_comp_s: 0.5,
            msgs: 100,
            bytes: 4096,
            total_ops: 9999,
            max_peak_bytes: 1 << 20,
            critical_comm_share: 0.625,
            makespan_s: 0.875,
            wall_s: 0.01,
        }
    }

    #[test]
    fn makespan_is_compared_bit_exact() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut cur = case("a");
        cur.makespan_s = f64::from_bits(cur.makespan_s.to_bits() + 1);
        let findings = b.compare(&[cur], None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "makespan_s");
        assert_eq!(findings[0].severity, Severity::Regression);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let b = Baseline::new(0.75, vec![case("a"), case("b \"quoted\"")]);
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.cases[0].modeled_comm_s.to_bits(),
            b.cases[0].modeled_comm_s.to_bits()
        );
    }

    #[test]
    fn identical_runs_pass() {
        let b = Baseline::new(1.0, vec![case("a")]);
        assert!(b.compare(&[case("a")], None).is_empty());
    }

    #[test]
    fn slower_modeled_time_is_a_regression() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut cur = case("a");
        cur.modeled_comm_s *= 10.0;
        let findings = b.compare(&[cur], None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "modeled_comm_s");
        assert_eq!(findings[0].severity, Severity::Regression);
    }

    #[test]
    fn faster_modeled_time_is_drift_not_pass() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut cur = case("a");
        cur.modeled_comp_s /= 2.0;
        let findings = b.compare(&[cur], None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Drift);
    }

    #[test]
    fn wall_clock_is_one_sided_band() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut fast = case("a");
        fast.wall_s = 1e-9; // much faster: fine
        assert!(b.compare(&[fast], None).is_empty());

        let mut slow = case("a");
        slow.wall_s = case("a").wall_s * 2.01; // past the 100% band
        let findings = b.compare(&[slow], None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "wall_s");

        let mut in_band = case("a");
        in_band.wall_s = case("a").wall_s * 1.99;
        assert!(b.compare(&[in_band], None).is_empty());
    }

    #[test]
    fn band_override_tightens_the_gate() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut slow = case("a");
        slow.wall_s = case("a").wall_s * 1.5;
        assert!(b.compare(&[slow.clone()], None).is_empty());
        assert_eq!(b.compare(&[slow], Some(0.25)).len(), 1);
    }

    #[test]
    fn missing_and_new_cases_are_flagged() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let findings = b.compare(&[case("b")], None);
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .any(|f| f.case == "b" && f.severity == Severity::Drift));
        assert!(findings
            .iter()
            .any(|f| f.case == "a" && f.severity == Severity::Regression));
    }

    #[test]
    fn critical_comm_share_is_compared_bit_exact() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut cur = case("a");
        cur.critical_comm_share = f64::from_bits(cur.critical_comm_share.to_bits() + 1);
        let findings = b.compare(&[cur], None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "critical_comm_share");
    }

    #[test]
    fn peak_memory_growth_is_a_regression() {
        let b = Baseline::new(1.0, vec![case("a")]);
        let mut cur = case("a");
        cur.max_peak_bytes += 1;
        let findings = b.compare(&[cur], None);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].metric, "max_peak_bytes");
        assert_eq!(findings[0].severity, Severity::Regression);
    }
}
