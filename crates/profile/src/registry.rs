//! The metrics registry: named counter / gauge / histogram families
//! with optional labels, deterministic ordering, and lock-protected
//! concurrent updates.
//!
//! Metric and label names follow the Prometheus data model
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`); families and samples are kept in
//! `BTreeMap`s so every export is byte-stable for a given sequence of
//! updates — the property the golden exporter tests pin.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of finite log2 buckets in a histogram: upper bounds
/// `2^0 … 2^(LOG2_BUCKETS-1)`, with one implicit `+Inf` overflow
/// bucket on top. 2³¹ comfortably covers byte counts and frontier
/// sizes at simulation scale.
pub const LOG2_BUCKETS: usize = 32;

/// What a metric family measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating sum.
    Counter,
    /// Last-write-wins sampled value.
    Gauge,
    /// Fixed-bucket log2 histogram of non-negative observations.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A log2 histogram: `buckets[b]` counts observations `v` with
/// `v <= 2^b` (and greater than the previous bound); values above
/// `2^(LOG2_BUCKETS-1)` land in the overflow bucket.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: Vec<u64>,
    /// Observations above the largest finite bound (`+Inf` bucket).
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: vec![0; LOG2_BUCKETS],
            ..Histogram::default()
        }
    }

    fn observe(&mut self, v: f64) {
        let v = v.max(0.0);
        let mut placed = false;
        for b in 0..LOG2_BUCKETS {
            if v <= (1u64 << b) as f64 {
                self.buckets[b] += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v;
    }

    /// Upper bound of finite bucket `b` (`2^b`).
    pub fn bound(b: usize) -> u64 {
        1u64 << b
    }
}

/// One sample's value.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// Accumulated counter total.
    Counter(f64),
    /// Latest gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(Histogram),
}

/// A label set, sorted by key at construction so identical sets hash
/// to the same sample regardless of call-site ordering.
pub type Labels = Vec<(String, String)>;

fn label_key(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, val)| ((*k).to_string(), (*val).to_string()))
        .collect();
    v.sort();
    v
}

#[derive(Clone, Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    samples: BTreeMap<Labels, SampleValue>,
}

/// Snapshot of one family for export.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Metric family name.
    pub name: String,
    /// Help text (may be empty for undeclared families).
    pub help: String,
    /// Kind of every sample in the family.
    pub kind: MetricKind,
    /// Samples, ordered by label set.
    pub samples: Vec<(Labels, SampleValue)>,
}

/// A thread-safe registry of metric families.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Declares (or re-declares) a family's help text and kind.
    /// Idempotent; declaring an existing family with a *different*
    /// kind panics — that is a programming error, not runtime input.
    pub fn declare(&self, name: &str, kind: MetricKind, help: &str) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut fams = self.families.lock().expect("metrics registry lock");
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: String::new(),
            kind,
            samples: BTreeMap::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric {name:?} redeclared with a different kind"
        );
        fam.help = help.to_string();
    }

    fn with_sample(
        &self,
        name: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        f: impl FnOnce(&mut SampleValue),
    ) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let mut fams = self.families.lock().expect("metrics registry lock");
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: String::new(),
            kind,
            samples: BTreeMap::new(),
        });
        assert_eq!(fam.kind, kind, "metric {name:?} used as a different kind");
        let sample = fam
            .samples
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                MetricKind::Counter => SampleValue::Counter(0.0),
                MetricKind::Gauge => SampleValue::Gauge(0.0),
                MetricKind::Histogram => SampleValue::Histogram(Histogram::new()),
            });
        f(sample);
    }

    /// Adds `delta` (must be ≥ 0) to a counter sample.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        debug_assert!(delta >= 0.0, "counter {name:?} decremented by {delta}");
        self.with_sample(name, MetricKind::Counter, labels, |s| {
            if let SampleValue::Counter(v) = s {
                *v += delta;
            }
        });
    }

    /// Sets a gauge sample.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with_sample(name, MetricKind::Gauge, labels, |s| {
            if let SampleValue::Gauge(v) = s {
                *v = value;
            }
        });
    }

    /// Records one observation into a histogram sample.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with_sample(name, MetricKind::Histogram, labels, |s| {
            if let SampleValue::Histogram(h) = s {
                h.observe(value);
            }
        });
    }

    /// Copies out every family, ordered by name, samples ordered by
    /// label set — the deterministic view the exporters render.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let fams = self.families.lock().expect("metrics registry lock");
        fams.iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                samples: fam
                    .samples
                    .iter()
                    .map(|(l, v)| (l.clone(), v.clone()))
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::new();
        r.counter_add("hits_total", &[("kind", "a")], 1.0);
        r.counter_add("hits_total", &[("kind", "a")], 2.0);
        r.counter_add("hits_total", &[("kind", "b")], 5.0);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].samples.len(), 2);
        assert_eq!(snap[0].samples[0].1, SampleValue::Counter(3.0));
        assert_eq!(snap[0].samples[1].1, SampleValue::Counter(5.0));
    }

    #[test]
    fn label_order_does_not_split_samples() {
        let r = MetricsRegistry::new();
        r.counter_add("x_total", &[("a", "1"), ("b", "2")], 1.0);
        r.counter_add("x_total", &[("b", "2"), ("a", "1")], 1.0);
        let snap = r.snapshot();
        assert_eq!(snap[0].samples.len(), 1);
        assert_eq!(snap[0].samples[0].1, SampleValue::Counter(2.0));
    }

    #[test]
    fn gauges_take_last_write() {
        let r = MetricsRegistry::new();
        r.gauge_set("temp", &[], 1.0);
        r.gauge_set("temp", &[], -3.5);
        let snap = r.snapshot();
        assert_eq!(snap[0].samples[0].1, SampleValue::Gauge(-3.5));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let r = MetricsRegistry::new();
        for v in [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 1e12] {
            r.observe("sizes", &[], v);
        }
        let snap = r.snapshot();
        let SampleValue::Histogram(h) = &snap[0].samples[0].1 else {
            panic!("not a histogram");
        };
        assert_eq!(h.buckets[0], 2); // 0, 1
        assert_eq!(h.buckets[1], 1); // 2
        assert_eq!(h.buckets[2], 2); // 3, 4
        assert_eq!(h.buckets[3], 1); // 5
        assert_eq!(h.overflow, 1); // 1e12 > 2^31
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 15.0 + 1e12);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[], 1.0);
        r.gauge_set("x", &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        let r = MetricsRegistry::new();
        r.counter_add("9starts-with-digit", &[], 1.0);
    }

    #[test]
    fn declare_sets_help() {
        let r = MetricsRegistry::new();
        r.declare("x_total", MetricKind::Counter, "counts xs");
        r.counter_add("x_total", &[], 1.0);
        let snap = r.snapshot();
        assert_eq!(snap[0].help, "counts xs");
        assert_eq!(snap[0].kind, MetricKind::Counter);
    }
}
