//! All-pairs shortest paths by tropical path doubling — the
//! comparison target of the paper's §5.3.2/§5.3.3.
//!
//! The best-known APSP algorithms compute the full `n × n` distance
//! matrix via 3D matrix multiplication, costing `O(β·n²/√(cp))`
//! bandwidth but requiring `Ω(n²/p)` memory regardless of the graph's
//! sparsity; path doubling reaches `O(α log p)`-latency territory by
//! squaring the adjacency matrix `⌈log₂ n⌉` times over the tropical
//! semiring (`A ← A •⟨min,+⟩ A` until fixpoint). MFBC matches the
//! bandwidth with only `O(cm/p)` memory — the claim the
//! `apsp_vs_mfbc` benchmark reproduces by running both on the same
//! simulated machine and comparing charged bytes and peak memory.

use mfbc_algebra::kernel::TropicalKernel;
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::Dist;
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::{spgemm, Coo, Csr};
use mfbc_tensor::autotune::mm_auto;
use mfbc_tensor::ops::dmat_combine;
use mfbc_tensor::{canonical_layout, DistMat};

/// Adds the zero-distance diagonal to an adjacency matrix (paths of
/// length 0), the identity element of tropical matrix powering.
fn with_diagonal(a: &Csr<Dist>) -> Csr<Dist> {
    let n = a.nrows();
    let mut coo = Coo::from_csr(a);
    for v in 0..n {
        coo.push(v, v, Dist::ZERO);
    }
    coo.into_csr::<MinDist>()
}

/// Sequential path-doubling APSP: returns the full distance matrix
/// (entry absent ⇔ unreachable). `O(log d)` tropical squarings.
pub fn apsp_seq(g: &Graph) -> Csr<Dist> {
    let mut d = with_diagonal(g.adjacency());
    loop {
        let squared = spgemm::<TropicalKernel>(&d, &d).mat;
        if squared == d {
            return d;
        }
        d = squared;
    }
}

/// Result of a distributed APSP run.
#[derive(Clone, Debug)]
pub struct ApspRun {
    /// The distance matrix, canonically distributed.
    pub distances: DistMat<Dist>,
    /// Squaring rounds executed (`⌈log₂ d⌉ + 1`).
    pub rounds: usize,
}

/// Distributed path-doubling APSP with autotuned products. The
/// distance matrix densifies toward `n²` entries, so per-rank memory
/// grows to `Θ(n²/p)` — the cost MFBC avoids (§5.3.2). Out-of-memory
/// failures surface exactly like the paper's infeasible
/// configurations.
pub fn apsp_dist(machine: &Machine, g: &Graph) -> Result<ApspRun, MachineError> {
    let n = g.n();
    let layout = canonical_layout(machine, n, n);
    let mut d = DistMat::from_global(layout, &with_diagonal(g.adjacency()));
    d.charge_memory(machine)?;
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        let squared = mm_auto::<TropicalKernel>(machine, &d, &d)?.0;
        // min-combine keeps the matrices aligned and makes the
        // fixpoint test a plain equality.
        let merged = dmat_combine::<MinDist, _>(machine, &d, &squared.c);
        let done = merged.to_global::<MinDist>() == d.to_global::<MinDist>();
        d.release_memory(machine);
        d = merged;
        d.charge_memory(machine)?;
        if done {
            return Ok(ApspRun {
                distances: d,
                rounds,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::sssp_seq;
    use mfbc_graph::gen::uniform;
    use mfbc_machine::MachineSpec;

    #[test]
    fn apsp_matches_per_source_sssp() {
        let g = uniform(30, 120, true, Some(9), 2);
        let d = apsp_seq(&g);
        let sources: Vec<usize> = (0..g.n()).collect();
        let rows = sssp_seq(&g, &sources);
        for s in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(d.get(s, v), rows.get(s, v), "({s},{v})");
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let g = uniform(10, 30, false, None, 3);
        let d = apsp_seq(&g);
        for v in 0..g.n() {
            assert_eq!(d.get(v, v), Some(&Dist::ZERO));
        }
    }

    #[test]
    fn dist_apsp_matches_seq_and_uses_log_rounds() {
        let g = uniform(24, 70, false, None, 5);
        let want = apsp_seq(&g);
        let machine = Machine::new(MachineSpec::test(4));
        let run = apsp_dist(&machine, &g).unwrap();
        assert_eq!(run.distances.to_global::<MinDist>(), want);
        // Path doubling: rounds ≈ log₂(diameter) + fixpoint check,
        // far below n.
        assert!(run.rounds <= 8, "rounds = {}", run.rounds);
    }

    #[test]
    fn apsp_memory_is_quadratic() {
        // The distance matrix approaches n² entries on a connected
        // graph — the Ω(n²/p) footprint of §5.3.2.
        let g = uniform(64, 512, false, None, 7);
        let machine = Machine::new(MachineSpec::test(4));
        let run = apsp_dist(&machine, &g).unwrap();
        let n = g.n();
        assert!(
            run.distances.nnz() as f64 > 0.9 * (n * n) as f64,
            "nnz = {} of {}",
            run.distances.nnz(),
            n * n
        );
        let peak = machine.with_tracker(|t| t.max_peak());
        let quadratic_share = (n * n * 12 / 4) as u64; // Dist+idx per rank
        assert!(peak as f64 > 0.8 * quadratic_share as f64);
    }
}
