//! Approximate betweenness centrality by source sampling.
//!
//! The paper's motivation cites Bader et al.'s adaptive sampling
//! [ref. 4]: exact BC runs Brandes from *every* source, but an
//! unbiased estimate from `k` uniformly sampled sources often
//! suffices — and MFBC's batched structure makes sampled execution
//! natural (one batch of `k` sources instead of `n/n_b` batches).
//! The estimator scales each sampled dependency by `n/k`:
//!
//! ```text
//! λ̂(v) = (n/k) · Σ_{s ∈ S} δ(s, v),   S ~ Uniform(V), |S| = k
//! ```
//!
//! which satisfies `E[λ̂(v)] = λ(v)`.

use crate::scores::BcScores;
use crate::seq::mfbf::mfbf_seq;
use crate::seq::mfbr::mfbr_seq;
use mfbc_graph::Graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a sampled run: the estimate plus the sample that
/// produced it (for reproducibility / incremental refinement).
#[derive(Clone, Debug)]
pub struct ApproxBc {
    /// The unbiased estimate `λ̂`.
    pub scores: BcScores,
    /// The sampled source vertices.
    pub sources: Vec<usize>,
}

/// Estimates betweenness centrality from `k` uniformly sampled
/// sources (shared-memory MFBC).
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn mfbc_approx(g: &Graph, k: usize, seed: u64) -> ApproxBc {
    let n = g.n();
    assert!(k > 0 && k <= n, "sample size {k} out of range for n={n}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vertices: Vec<usize> = (0..n).collect();
    vertices.shuffle(&mut rng);
    let sources: Vec<usize> = vertices.into_iter().take(k).collect();
    let scores = approx_from_sources(g, &sources);
    ApproxBc { scores, sources }
}

/// The estimator for an explicit source set (exposed so callers can
/// do stratified or adaptive sampling).
pub fn approx_from_sources(g: &Graph, sources: &[usize]) -> BcScores {
    let n = g.n();
    let mut scores = BcScores::zeros(n);
    if sources.is_empty() {
        return scores;
    }
    let fwd = mfbf_seq(g, sources);
    let back = mfbr_seq(g, &fwd.t);
    let scale = n as f64 / sources.len() as f64;
    for (s, v, z) in back.z.iter() {
        if v == sources[s] {
            continue;
        }
        let sigma = fwd.t.get(s, v).expect("Z pattern ⊆ T pattern").m;
        scores.lambda[v] += scale * z.p * sigma;
    }
    scores
}

/// Distributed sampled approximation: runs the batched distributed
/// driver on `k` uniformly sampled sources and scales by `n/k`.
/// Costs (communication, memory) accrue on `machine` exactly as an
/// exact run's first `⌈k/n_b⌉` batches would.
pub fn mfbc_approx_dist(
    machine: &mfbc_machine::Machine,
    g: &Graph,
    k: usize,
    seed: u64,
    cfg: &crate::dist::MfbcConfig,
) -> Result<ApproxBc, mfbc_machine::MachineError> {
    let n = g.n();
    assert!(k > 0 && k <= n, "sample size {k} out of range for n={n}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vertices: Vec<usize> = (0..n).collect();
    vertices.shuffle(&mut rng);
    let sources: Vec<usize> = vertices.into_iter().take(k).collect();

    let run = crate::dist::mfbc_dist(
        machine,
        g,
        &crate::dist::MfbcConfig {
            sources: Some(sources.clone()),
            max_batches: None,
            ..cfg.clone()
        },
    )?;
    let scale = n as f64 / k as f64;
    let mut scores = run.scores;
    for x in &mut scores.lambda {
        *x *= scale;
    }
    Ok(ApproxBc { scores, sources })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brandes_unweighted;
    use mfbc_graph::gen::uniform;

    #[test]
    fn full_sample_equals_exact() {
        let g = uniform(40, 150, false, None, 3);
        let exact = brandes_unweighted(&g);
        let approx = mfbc_approx(&g, g.n(), 1);
        assert!(
            approx.scores.approx_eq(&exact, 1e-9),
            "k = n must be exact; diff {}",
            approx.scores.max_abs_diff(&exact)
        );
        assert_eq!(approx.sources.len(), g.n());
    }

    #[test]
    fn estimator_is_unbiased_over_disjoint_samples() {
        // Averaging the estimators of a partition of V reproduces the
        // exact scores (each vertex appears in exactly one part).
        let g = uniform(30, 120, false, None, 5);
        let exact = brandes_unweighted(&g);
        let all: Vec<usize> = (0..g.n()).collect();
        let mut mean = BcScores::zeros(g.n());
        let parts: Vec<&[usize]> = all.chunks(10).collect();
        for part in &parts {
            let est = approx_from_sources(&g, part);
            for (a, b) in mean.lambda.iter_mut().zip(&est.lambda) {
                *a += b / parts.len() as f64;
            }
        }
        assert!(
            mean.approx_eq(&exact, 1e-9),
            "partition mean must be exact; diff {}",
            mean.max_abs_diff(&exact)
        );
    }

    #[test]
    fn half_sample_ranks_the_hub_first() {
        // Star graph: any nonempty sample identifies the hub.
        let g = Graph::unweighted(21, false, (1..21).map(|v| (0, v)));
        let approx = mfbc_approx(&g, 10, 7);
        assert_eq!(approx.scores.top_k(1)[0].0, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = uniform(30, 100, false, None, 9);
        let a = mfbc_approx(&g, 8, 42);
        let b = mfbc_approx(&g, 8, 42);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn dist_approx_matches_seq_approx() {
        use mfbc_machine::{Machine, MachineSpec};
        let g = uniform(36, 140, false, None, 11);
        let seq = mfbc_approx(&g, 12, 99);
        let machine = Machine::new(MachineSpec::test(4));
        let dist =
            mfbc_approx_dist(&machine, &g, 12, 99, &crate::dist::MfbcConfig::default()).unwrap();
        assert_eq!(dist.sources, seq.sources, "same seed, same sample");
        assert!(
            dist.scores.approx_eq(&seq.scores, 1e-9),
            "diff {}",
            dist.scores.max_abs_diff(&seq.scores)
        );
    }

    #[test]
    #[should_panic]
    fn oversized_sample_rejected() {
        let g = uniform(10, 20, false, None, 1);
        let _ = mfbc_approx(&g, 11, 1);
    }
}
