//! Approximate betweenness centrality by source sampling.
//!
//! The paper's motivation cites Bader et al.'s adaptive sampling
//! [ref. 4]: exact BC runs Brandes from *every* source, but an
//! unbiased estimate from `k` uniformly sampled sources often
//! suffices — and MFBC's batched structure makes sampled execution
//! natural (one batch of `k` sources instead of `n/n_b` batches).
//! The estimator scales each sampled dependency by `n/k`:
//!
//! ```text
//! λ̂(v) = (n/k) · Σ_{s ∈ S} δ(s, v),   S ~ Uniform(V), |S| = k
//! ```
//!
//! which satisfies `E[λ̂(v)] = λ(v)`.

use crate::scores::BcScores;
use crate::seq::mfbf::mfbf_seq;
use crate::seq::mfbr::mfbr_seq;
use mfbc_graph::Graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a sampled run: the estimate plus the sample that
/// produced it (for reproducibility / incremental refinement).
#[derive(Clone, Debug)]
pub struct ApproxBc {
    /// The unbiased estimate `λ̂`.
    pub scores: BcScores,
    /// The sampled source vertices.
    pub sources: Vec<usize>,
}

/// Draws the `k`-source uniform sample every sampled estimator in
/// this crate uses, from an *explicit* seed — there is no ambient RNG
/// anywhere in the sampling path, so a `(n, k, seed)` triple names
/// the sample exactly (the serve engine and the conformance harness
/// rely on this to replay degraded responses bit for bit).
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn sample_sources(n: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k > 0 && k <= n, "sample size {k} out of range for n={n}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vertices: Vec<usize> = (0..n).collect();
    vertices.shuffle(&mut rng);
    vertices.truncate(k);
    vertices
}

/// Relative standard error of the `k`-of-`n` estimator under the
/// uniform-sampling model, with the finite-population correction:
/// `sqrt((n − k) / (k · (n − 1)))`. It is `0` exactly when `k = n`
/// (the sample is a census) and shrinks as `1/√k` — the `ci` tag a
/// degraded serve response carries so callers can judge the estimate
/// without knowing the sampling internals.
pub fn sample_rel_se(n: usize, k: usize) -> f64 {
    assert!(k > 0 && k <= n, "sample size {k} out of range for n={n}");
    if n <= 1 {
        return 0.0;
    }
    (((n - k) as f64) / ((k * (n - 1)) as f64)).sqrt()
}

/// Estimates betweenness centrality from `k` uniformly sampled
/// sources (shared-memory MFBC).
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn mfbc_approx(g: &Graph, k: usize, seed: u64) -> ApproxBc {
    let sources = sample_sources(g.n(), k, seed);
    let scores = approx_from_sources(g, &sources);
    ApproxBc { scores, sources }
}

/// The estimator for an explicit source set (exposed so callers can
/// do stratified or adaptive sampling).
pub fn approx_from_sources(g: &Graph, sources: &[usize]) -> BcScores {
    let n = g.n();
    let mut scores = BcScores::zeros(n);
    if sources.is_empty() {
        return scores;
    }
    let fwd = mfbf_seq(g, sources);
    let back = mfbr_seq(g, &fwd.t);
    let scale = n as f64 / sources.len() as f64;
    for (s, v, z) in back.z.iter() {
        if v == sources[s] {
            continue;
        }
        let sigma = fwd.t.get(s, v).expect("Z pattern ⊆ T pattern").m;
        scores.lambda[v] += scale * z.p * sigma;
    }
    scores
}

/// Distributed sampled approximation: runs the batched distributed
/// driver on `k` uniformly sampled sources and scales by `n/k`.
/// Costs (communication, memory) accrue on `machine` exactly as an
/// exact run's first `⌈k/n_b⌉` batches would.
pub fn mfbc_approx_dist(
    machine: &mfbc_machine::Machine,
    g: &Graph,
    k: usize,
    seed: u64,
    cfg: &crate::dist::MfbcConfig,
) -> Result<ApproxBc, mfbc_machine::MachineError> {
    let n = g.n();
    let sources = sample_sources(n, k, seed);

    let run = crate::dist::mfbc_dist(
        machine,
        g,
        &crate::dist::MfbcConfig {
            sources: Some(sources.clone()),
            max_batches: None,
            ..cfg.clone()
        },
    )?;
    let scale = n as f64 / k as f64;
    let mut scores = run.scores;
    for x in &mut scores.lambda {
        *x *= scale;
    }
    Ok(ApproxBc { scores, sources })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brandes_unweighted;
    use mfbc_graph::gen::uniform;

    #[test]
    fn full_sample_equals_exact() {
        let g = uniform(40, 150, false, None, 3);
        let exact = brandes_unweighted(&g);
        let approx = mfbc_approx(&g, g.n(), 1);
        assert!(
            approx.scores.approx_eq(&exact, 1e-9),
            "k = n must be exact; diff {}",
            approx.scores.max_abs_diff(&exact)
        );
        assert_eq!(approx.sources.len(), g.n());
    }

    #[test]
    fn estimator_is_unbiased_over_disjoint_samples() {
        // Averaging the estimators of a partition of V reproduces the
        // exact scores (each vertex appears in exactly one part).
        let g = uniform(30, 120, false, None, 5);
        let exact = brandes_unweighted(&g);
        let all: Vec<usize> = (0..g.n()).collect();
        let mut mean = BcScores::zeros(g.n());
        let parts: Vec<&[usize]> = all.chunks(10).collect();
        for part in &parts {
            let est = approx_from_sources(&g, part);
            for (a, b) in mean.lambda.iter_mut().zip(&est.lambda) {
                *a += b / parts.len() as f64;
            }
        }
        assert!(
            mean.approx_eq(&exact, 1e-9),
            "partition mean must be exact; diff {}",
            mean.max_abs_diff(&exact)
        );
    }

    #[test]
    fn half_sample_ranks_the_hub_first() {
        // Star graph: any nonempty sample identifies the hub.
        let g = Graph::unweighted(21, false, (1..21).map(|v| (0, v)));
        let approx = mfbc_approx(&g, 10, 7);
        assert_eq!(approx.scores.top_k(1)[0].0, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = uniform(30, 100, false, None, 9);
        let a = mfbc_approx(&g, 8, 42);
        let b = mfbc_approx(&g, 8, 42);
        assert_eq!(a.sources, b.sources);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn dist_approx_matches_seq_approx() {
        use mfbc_machine::{Machine, MachineSpec};
        let g = uniform(36, 140, false, None, 11);
        let seq = mfbc_approx(&g, 12, 99);
        let machine = Machine::new(MachineSpec::test(4));
        let dist =
            mfbc_approx_dist(&machine, &g, 12, 99, &crate::dist::MfbcConfig::default()).unwrap();
        assert_eq!(dist.sources, seq.sources, "same seed, same sample");
        assert!(
            dist.scores.approx_eq(&seq.scores, 1e-9),
            "diff {}",
            dist.scores.max_abs_diff(&seq.scores)
        );
    }

    #[test]
    #[should_panic]
    fn oversized_sample_rejected() {
        let g = uniform(10, 20, false, None, 1);
        let _ = mfbc_approx(&g, 11, 1);
    }

    #[test]
    fn sample_sources_is_the_only_sampling_path() {
        // Both entry points must draw the exact same sample as the
        // shared helper — no second RNG stream anywhere.
        use mfbc_machine::{Machine, MachineSpec};
        let g = uniform(24, 90, false, None, 13);
        let want = sample_sources(g.n(), 6, 0xfeed);
        assert_eq!(mfbc_approx(&g, 6, 0xfeed).sources, want);
        let machine = Machine::new(MachineSpec::test(2));
        let dist =
            mfbc_approx_dist(&machine, &g, 6, 0xfeed, &crate::dist::MfbcConfig::default()).unwrap();
        assert_eq!(dist.sources, want);
    }

    #[test]
    fn scale_factor_is_exact_in_f64_for_pinned_sizes() {
        // The pinned golden below uses n = 8, k = 4: n/k = 2.0 is a
        // power of two, so the estimator's scale factor is exact in
        // f64 (no rounding enters the scaled sums beyond the products
        // themselves). Guard the arithmetic fact explicitly.
        for (n, k, want) in [(8usize, 4usize, 2.0f64), (8, 2, 4.0), (512, 128, 4.0)] {
            assert_eq!((n as f64 / k as f64).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn sample_rel_se_shrinks_and_vanishes_at_census() {
        let n = 64;
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let se = sample_rel_se(n, k);
            assert!(se >= 0.0 && se < prev, "k={k}: {se} !< {prev}");
            prev = se;
        }
        assert_eq!(sample_rel_se(n, n), 0.0);
        assert_eq!(sample_rel_se(1, 1), 0.0);
    }

    fn golden_graph() -> Graph {
        // The 8-vertex ladder the fault-recovery tests use: unit
        // weights, dyadic dependency values.
        Graph::unweighted(
            8,
            false,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (1, 5),
                (2, 6),
            ],
        )
    }

    #[test]
    fn golden_half_sample_is_bit_identical() {
        // Pinned golden: n = 8, k = 4, seed 0x5eed. The scale factor
        // n/k = 2.0 is exact in f64 (see
        // scale_factor_is_exact_in_f64_for_pinned_sizes), so this
        // estimate is reproducible bit for bit on any platform. A
        // drift here means the sampling stream or the estimator
        // arithmetic changed — both are serving-protocol breaks.
        let approx = mfbc_approx(&golden_graph(), 4, 0x5eed);
        let got: Vec<u64> = approx.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = GOLDEN_HALF_SAMPLE.to_vec();
        assert_eq!(
            got, want,
            "golden drift: sources {:?} scores {:?}",
            approx.sources, approx.scores.lambda
        );
    }

    /// `mfbc_approx(golden_graph(), 4, 0x5eed).scores.lambda` as raw
    /// f64 bits — the sample is `[3, 7, 6, 5]` and the scaled sums
    /// are the dyadic values `[0, 9, 16, 0, 4, 8, 17, 0]`.
    const GOLDEN_HALF_SAMPLE: [u64; 8] = [
        0,
        4621256167635550208,
        4625196817309499392,
        0,
        4616189618054758400,
        4620693217682128896,
        4625478292286210048,
        0,
    ];
}
