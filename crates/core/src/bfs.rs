//! Algebraic breadth-first search and single-source shortest paths —
//! the paper's introductory example (§2.3): "BFS can be expressed as
//! iterative multiplication of the sparse adjacency matrix A with a
//! sparse vector xᵢ over the tropical semiring".
//!
//! Exposed as batched (multi-source) operations on the same
//! distributed machinery as MFBC: a batch of sources is an
//! `n_b × n` tropical frontier matrix, each iteration one
//! generalized product. These are useful library citizens in their
//! own right (distance queries, reachability) and double as a gentle
//! on-ramp to the MFBC code.

use mfbc_algebra::kernel::TropicalKernel;
use mfbc_algebra::monoid::MinDist;
use mfbc_algebra::Dist;
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::{spgemm, Coo, Csr};
use mfbc_tensor::autotune::mm_auto_cached;
use mfbc_tensor::cache::MmCache;
use mfbc_tensor::ops::{dmat_combine, dmat_zip_filter, nnz_sync};
use mfbc_tensor::{canonical_layout, DistMat};

/// Distances from each source in `sources` to every vertex:
/// `out.get(s, v) == Some(τ(sources[s], v))` for reachable `v ≠
/// sources[s]`, diagonal entries are 0. Plain tropical Bellman–Ford
/// (no multiplicities) on CSR — the §2.3 loop.
pub fn sssp_seq(g: &Graph, sources: &[usize]) -> Csr<Dist> {
    let n = g.n();
    let nb = sources.len();
    let a = g.adjacency();

    let mut seeds = Coo::new(nb, n);
    for (s, &src) in sources.iter().enumerate() {
        assert!(src < n, "source {src} out of range");
        seeds.push(s, src, Dist::ZERO);
    }
    let mut dist = seeds.into_csr::<MinDist>();
    let mut frontier = dist.clone();

    while !frontier.is_empty() {
        let explored = spgemm::<TropicalKernel>(&frontier, a).mat;
        let updated = combine::<MinDist, _>(&dist, &explored);
        // Next frontier: entries that improved the table.
        frontier =
            explored.filter(|s, v, w| updated.get(s, v) == Some(w) && dist.get(s, v) != Some(w));
        dist = updated;
    }
    dist
}

/// Distributed batched SSSP over the simulated machine, with
/// autotuned products and the amortized adjacency cache — the
/// "BFS primitive" most prior BC parallelizations build on, here as
/// a two-line specialization of the MFBC machinery.
pub fn sssp_dist(
    machine: &Machine,
    g: &Graph,
    sources: &[usize],
) -> Result<DistMat<Dist>, MachineError> {
    let n = g.n();
    let nb = sources.len();
    let da = DistMat::from_global(canonical_layout(machine, n, n), g.adjacency());
    da.charge_memory(machine)?;
    let mut cache = MmCache::new();

    let mut seeds = Coo::new(nb, n);
    for (s, &src) in sources.iter().enumerate() {
        assert!(src < n, "source {src} out of range");
        seeds.push(s, src, Dist::ZERO);
    }
    let layout = canonical_layout(machine, nb, n);
    let mut dist = DistMat::from_global(layout, &seeds.into_csr::<MinDist>());
    let mut frontier = dist.clone();

    let result = (|| {
        while nnz_sync(machine, &frontier)? > 0 {
            let explored = mm_auto_cached::<TropicalKernel>(machine, &frontier, &da, &mut cache)?.0;
            let updated = dmat_combine::<MinDist, _>(machine, &dist, &explored.c);
            frontier = dmat_zip_filter::<MinDist, _, _, _>(
                machine,
                &explored.c,
                &updated,
                |gi, gj, w, u| {
                    let improved = u == Some(w) && dist_lookup(&dist, gi, gj) != Some(*w);
                    improved.then_some(*w)
                },
            );
            dist = updated;
        }
        Ok(dist)
    })();
    cache.release_all(machine);
    da.release_memory(machine);
    result
}

/// Global-coordinate lookup into a distributed matrix (helper for the
/// frontier filter; block-local `get` after locating the block).
fn dist_lookup(m: &DistMat<Dist>, gi: usize, gj: usize) -> Option<Dist> {
    let l = m.layout();
    let bi = l.find_row_block(gi);
    let bj = l.find_col_block(gj);
    m.block(bi, bj)
        .get(gi - l.row_range(bi).start, gj - l.col_range(bj).start)
        .copied()
}

/// Hop distances (unweighted BFS levels) from one source, as a plain
/// vector: `None` for unreachable vertices.
pub fn bfs_levels(g: &Graph, source: usize) -> Vec<Option<u64>> {
    assert!(
        g.is_unit_weighted(),
        "bfs_levels requires unit weights; use sssp_seq"
    );
    let d = sssp_seq(g, &[source]);
    (0..g.n()).map(|v| d.get(0, v).map(|w| w.raw())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_graph::stats::bfs_hops;
    use mfbc_machine::MachineSpec;

    #[test]
    fn sssp_matches_graph_bfs_on_unweighted() {
        let g = Graph::unweighted(
            8,
            false,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 4), (6, 7)],
        );
        let levels = bfs_levels(&g, 0);
        let reference = bfs_hops(&g, 0);
        for v in 0..g.n() {
            match (levels[v], reference[v]) {
                (Some(d), r) => assert_eq!(d as usize, r, "vertex {v}"),
                (None, r) => assert_eq!(r, usize::MAX, "vertex {v}"),
            }
        }
    }

    #[test]
    fn weighted_sssp_finds_cheapest_route() {
        let g = Graph::new(
            4,
            true,
            vec![
                (0, 1, Dist::new(1)),
                (1, 2, Dist::new(1)),
                (0, 2, Dist::new(5)),
                (2, 3, Dist::new(1)),
            ],
        );
        let d = sssp_seq(&g, &[0]);
        assert_eq!(d.get(0, 2), Some(&Dist::new(2)));
        assert_eq!(d.get(0, 3), Some(&Dist::new(3)));
    }

    #[test]
    fn batched_sources() {
        let g = Graph::unweighted(5, false, (0..4).map(|i| (i, i + 1)));
        let d = sssp_seq(&g, &[0, 4]);
        assert_eq!(d.get(0, 4), Some(&Dist::new(4)));
        assert_eq!(d.get(1, 0), Some(&Dist::new(4)));
        assert_eq!(d.get(1, 2), Some(&Dist::new(2)));
    }

    #[test]
    fn dist_sssp_matches_seq() {
        let g = mfbc_graph::gen::uniform(40, 140, true, Some(9), 3);
        let want = sssp_seq(&g, &[0, 5, 11]);
        for p in [1usize, 4] {
            let machine = Machine::new(MachineSpec::test(p));
            let got = sssp_dist(&machine, &g, &[0, 5, 11])
                .unwrap()
                .to_global::<MinDist>();
            assert_eq!(got, want, "p={p}");
            if p > 1 {
                assert!(machine.report().critical.comm_time > 0.0);
            }
        }
    }
}
