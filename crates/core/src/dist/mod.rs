//! Distributed MFBC over the simulated machine — the paper's two
//! parallel implementations (§6):
//!
//! * **CTF-MFBC** ([`PlanMode::Auto`]): every generalized matrix
//!   multiplication is planned by the autotuner, which searches data
//!   decompositions and 1D/2D/3D algorithm variants per operation;
//! * **CA-MFBC** ([`PlanMode::Ca`]): the fixed 3D processor grid of
//!   Theorem 5.1 — the adjacency matrix replicated over `c` layers
//!   (1D variant B), each layer running the stationary-adjacency 2D
//!   variant (AC) on a `√(p/c) × √(p/c)` grid;
//! * [`PlanMode::Fixed`] pins one explicit plan for every product
//!   (used by the ablation benchmarks).
//!
//! The driver mirrors `seq::{mfbf, mfbr, mfbc}` step for step; the
//! frontier-rule helpers are shared so the two implementations cannot
//! drift. Every matrix is canonically distributed; products charge
//! their communication to the machine's critical path; elementwise
//! steps charge local compute; per-iteration termination checks
//! charge an allreduce.

use crate::scores::BcScores;
use crate::seq::{mfbf_keep_in_frontier, mfbr_anchor, mfbr_fire};
use mfbc_algebra::kernel::{BellmanFordKernel, BrandesKernel};
use mfbc_algebra::monoid::SumF64;
use mfbc_algebra::{Centpath, CentpathMonoid, Multpath, MultpathMonoid};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::Coo;
use mfbc_tensor::autotune::mm_auto_cached;
use mfbc_tensor::cache::MmCache;
use mfbc_tensor::ops::{
    dmat_column_sums, dmat_combine, dmat_combine_anchored, dmat_map_filter, dmat_zip_filter,
    nnz_sync,
};
use mfbc_tensor::{canonical_layout, mm_exec_cached, DistMat, MmPlan, Variant1D, Variant2D};

/// How multiplication plans are chosen.
#[derive(Clone, Debug)]
pub enum PlanMode {
    /// CTF-MFBC: autotune every product.
    Auto,
    /// CA-MFBC: the Theorem-5.1 grid with `c` adjacency replicas;
    /// requires `p/c` to be a perfect square.
    Ca {
        /// Replication factor `c ∈ [1, p]`.
        c: usize,
    },
    /// One fixed plan for every product.
    Fixed(MmPlan),
}

impl PlanMode {
    fn plan_for(&self, m: &Machine) -> Option<MmPlan> {
        match self {
            PlanMode::Auto => None,
            PlanMode::Ca { c } => Some(ca_plan(m.p(), *c)),
            PlanMode::Fixed(plan) => Some(plan.clone()),
        }
    }
}

/// The CA-MFBC plan: `p1 = c` layers replicating the (right-operand)
/// adjacency, inner 2D stationary-adjacency on `√(p/c) × √(p/c)`.
///
/// # Panics
/// Panics unless `c` divides `p` and `p/c` is a perfect square.
pub fn ca_plan(p: usize, c: usize) -> MmPlan {
    assert!(c >= 1 && p.is_multiple_of(c), "c={c} must divide p={p}");
    let layer = p / c;
    let r = (layer as f64).sqrt().round() as usize;
    assert_eq!(r * r, layer, "p/c = {layer} must be a perfect square");
    if c == 1 {
        if r == 1 {
            return MmPlan::OneD(Variant1D::A);
        }
        return MmPlan::TwoD {
            variant: Variant2D::AC,
            p2: r,
            p3: r,
        };
    }
    MmPlan::ThreeD {
        split: Variant1D::B,
        inner: Variant2D::AC,
        p1: c,
        p2: r,
        p3: r,
    }
}

/// Configuration of a distributed MFBC run.
#[derive(Clone, Debug)]
pub struct MfbcConfig {
    /// Sources per batch (`n_b`); `None` chooses `min(n, 512)`, the
    /// batch size the paper's Table 3 uses.
    pub batch_size: Option<usize>,
    /// Plan selection mode.
    pub plan_mode: PlanMode,
    /// Cap on processed batches (benchmarks measure a single batch,
    /// as the paper's Table 3 does). `None` runs all `⌈n/n_b⌉`.
    pub max_batches: Option<usize>,
    /// Whether to amortize the adjacency's replication/redistribution
    /// across iterations and batches (Theorem 5.1's derivation;
    /// default true). `false` re-pays the preparation on every
    /// product — the ablation baseline.
    pub amortize_adjacency: bool,
    /// Source vertices to process; `None` means all of `0..n` (exact
    /// BC). An explicit subset computes the partial sums
    /// `Σ_{s ∈ S} δ(s, ·)` — the building block of sampled
    /// approximation (see [`crate::approx`]).
    pub sources: Option<Vec<usize>>,
    /// Shared-memory threads for the local kernels (`mfbc-parallel`
    /// pool size). `None` uses the process default (`MFBC_THREADS`
    /// env, else available parallelism). Results are bit-identical at
    /// any value.
    pub threads: Option<usize>,
}

impl Default for MfbcConfig {
    fn default() -> MfbcConfig {
        MfbcConfig {
            batch_size: None,
            plan_mode: PlanMode::Auto,
            max_batches: None,
            amortize_adjacency: true,
            sources: None,
            threads: None,
        }
    }
}

impl MfbcConfig {
    /// A config that pins every product to one explicit `plan` —
    /// the conformance harness's way of forcing a specific variant
    /// through the whole driver instead of going through autotune.
    pub fn fixed(plan: mfbc_tensor::MmPlan) -> MfbcConfig {
        MfbcConfig {
            plan_mode: PlanMode::Fixed(plan),
            ..MfbcConfig::default()
        }
    }

    /// A config using the CA-MFBC fixed 3D grid with replication `c`.
    pub fn ca(c: usize) -> MfbcConfig {
        MfbcConfig {
            plan_mode: PlanMode::Ca { c },
            ..MfbcConfig::default()
        }
    }

    /// Sets the per-batch source count, returning `self` for chaining.
    #[must_use]
    pub fn with_batch_size(mut self, nb: usize) -> MfbcConfig {
        self.batch_size = Some(nb);
        self
    }

    /// Sets the shared-memory thread count for the local kernels,
    /// returning `self` for chaining.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> MfbcConfig {
        self.threads = Some(threads);
        self
    }
}

/// Statistics and result of a distributed MFBC run.
#[derive(Clone, Debug)]
pub struct MfbcRun {
    /// Accumulated centrality scores (exact if every batch ran).
    pub scores: BcScores,
    /// Batches processed.
    pub batches: usize,
    /// Sources actually processed (for TEPS accounting).
    pub sources_processed: usize,
    /// Total forward iterations.
    pub forward_iterations: usize,
    /// Total backward iterations.
    pub backward_iterations: usize,
    /// `Σ nnz(Fᵢ)` over forward frontiers.
    pub frontier_nnz: u64,
    /// Total kernel applications.
    pub ops: u64,
}

/// Runs distributed MFBC on `machine`.
///
/// When [`MfbcConfig::threads`] is set, the whole run executes under
/// an `mfbc_parallel::with_threads` override, sizing every local
/// kernel's pool; results are bit-identical at any thread count.
///
/// # Errors
/// Propagates simulated out-of-memory failures.
pub fn mfbc_dist(machine: &Machine, g: &Graph, cfg: &MfbcConfig) -> Result<MfbcRun, MachineError> {
    match cfg.threads {
        Some(t) => mfbc_parallel::with_threads(t, || mfbc_dist_inner(machine, g, cfg)),
        None => mfbc_dist_inner(machine, g, cfg),
    }
}

fn mfbc_dist_inner(
    machine: &Machine,
    g: &Graph,
    cfg: &MfbcConfig,
) -> Result<MfbcRun, MachineError> {
    let n = g.n();
    let nb = cfg.batch_size.unwrap_or_else(|| n.min(512)).max(1);

    // Adjacency and its transpose, canonically distributed and
    // resident for the whole run.
    let da = DistMat::from_global(canonical_layout(machine, n, n), g.adjacency());
    let dat = DistMat::from_global(canonical_layout(machine, n, n), &g.adjacency_t());
    da.charge_memory(machine)?;
    dat.charge_memory(machine)?;

    let plan = cfg.plan_mode.plan_for(machine);
    // Prepared-adjacency caches: the Theorem-5.1 amortization. One
    // cache per orientation; both released (with their simulated
    // residency) at end of run.
    let mut fwd_cache: MmCache<mfbc_algebra::Dist> = MmCache::new();
    let mut back_cache: MmCache<mfbc_algebra::Dist> = MmCache::new();
    let mut run = MfbcRun {
        scores: BcScores::zeros(n),
        batches: 0,
        sources_processed: 0,
        forward_iterations: 0,
        backward_iterations: 0,
        frontier_nnz: 0,
        ops: 0,
    };

    let sources: Vec<usize> = match &cfg.sources {
        Some(s) => {
            for &v in s {
                assert!(v < n, "source {v} out of range for n={n}");
            }
            s.clone()
        }
        None => (0..n).collect(),
    };
    for chunk in sources.chunks(nb) {
        if let Some(max) = cfg.max_batches {
            if run.batches >= max {
                break;
            }
        }
        let caches = if cfg.amortize_adjacency {
            Some((&mut fwd_cache, &mut back_cache))
        } else {
            None
        };
        let _span = mfbc_trace::span(|| format!("batch {}", run.batches));
        let r = batch(
            machine,
            g,
            &da,
            &dat,
            chunk,
            plan.as_ref(),
            caches,
            &mut run,
        );
        if r.is_err() {
            fwd_cache.release_all(machine);
            back_cache.release_all(machine);
            da.release_memory(machine);
            dat.release_memory(machine);
            r?;
        }
        run.batches += 1;
        run.sources_processed += chunk.len();
    }

    fwd_cache.release_all(machine);
    back_cache.release_all(machine);
    da.release_memory(machine);
    dat.release_memory(machine);
    Ok(run)
}

fn mm_step<K: mfbc_algebra::SpMulKernel>(
    machine: &Machine,
    plan: Option<&MmPlan>,
    f: &DistMat<K::Left>,
    a: &DistMat<K::Right>,
    cache: Option<&mut MmCache<K::Right>>,
) -> Result<mfbc_tensor::MmOut<mfbc_algebra::kernel::KernelOut<K>>, MachineError> {
    match cache {
        Some(cache) => match plan {
            Some(p) => mm_exec_cached::<K>(machine, p, f, a, cache),
            None => mm_auto_cached::<K>(machine, f, a, cache).map(|(out, _)| out),
        },
        // Un-amortized: every product pays its own preparation.
        None => match plan {
            Some(p) => mfbc_tensor::mm_exec::<K>(machine, p, f, a),
            None => mfbc_tensor::mm_auto::<K>(machine, f, a).map(|(out, _)| out),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn batch(
    machine: &Machine,
    g: &Graph,
    da: &DistMat<mfbc_algebra::Dist>,
    dat: &DistMat<mfbc_algebra::Dist>,
    chunk: &[usize],
    plan: Option<&MmPlan>,
    mut caches: Option<(
        &mut MmCache<mfbc_algebra::Dist>,
        &mut MmCache<mfbc_algebra::Dist>,
    )>,
    run: &mut MfbcRun,
) -> Result<(), MachineError> {
    let n = g.n();
    let nbatch = chunk.len();

    // ---- MFBF (Algorithm 1) ----
    // One-edge seeds form the initial frontier; the table also gets
    // the (0, 1) diagonal — see seq::mfbf's module docs.
    let mut init = Coo::new(nbatch, n);
    for (s, &src) in chunk.iter().enumerate() {
        for (v, w) in g.neighbors(src) {
            init.push(s, v, Multpath::new(w, 1.0));
        }
    }
    let mut with_diag = Coo::new(nbatch, n);
    for (s, &src) in chunk.iter().enumerate() {
        with_diag.push(s, src, Multpath::trivial());
    }
    let frontier_layout = canonical_layout(machine, nbatch, n);
    let frontier_init =
        DistMat::from_global(frontier_layout.clone(), &init.into_csr::<MultpathMonoid>());
    let diag = DistMat::from_global(
        frontier_layout.clone(),
        &with_diag.into_csr::<MultpathMonoid>(),
    );
    let mut t = dmat_combine::<MultpathMonoid, _>(machine, &frontier_init, &diag);
    t.charge_memory(machine)?;
    let mut frontier = frontier_init;

    let batch_idx = run.batches;
    let mut step = 0usize;
    while nnz_sync(machine, &frontier) > 0 {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Superstep {
            phase: "forward",
            batch: batch_idx,
            step,
            frontier_nnz: frontier.nnz() as u64,
            active_rows: active_rows(&frontier),
        });
        step += 1;
        run.forward_iterations += 1;
        run.frontier_nnz += frontier.nnz() as u64;
        let explored = mm_step::<BellmanFordKernel>(
            machine,
            plan,
            &frontier,
            da,
            caches.as_mut().map(|(f, _)| &mut **f),
        )?;
        run.ops += explored.ops;
        let t_new = dmat_combine::<MultpathMonoid, _>(machine, &t, &explored.c);
        frontier = dmat_zip_filter::<MultpathMonoid, _, _, _>(
            machine,
            &explored.c,
            &t_new,
            |_, _, gv, tv| mfbf_keep_in_frontier(gv, tv),
        );
        t.release_memory(machine);
        t = t_new;
        t.charge_memory(machine)?;
    }

    // ---- MFBr (Algorithm 2) ----
    let seeds = dmat_map_filter::<CentpathMonoid, _, _>(machine, &t, |_, _, mp: &Multpath| {
        Some(Centpath::new(mp.w, 0.0, 1))
    });
    let counted = mm_step::<BrandesKernel>(
        machine,
        plan,
        &seeds,
        dat,
        caches.as_mut().map(|(_, b)| &mut **b),
    )?;
    run.ops += counted.ops;
    let mut z =
        dmat_zip_filter::<CentpathMonoid, _, _, _>(machine, &t, &counted.c, |_, _, mp, d| {
            Some(mfbr_anchor(mp, d))
        });
    z.charge_memory(machine)?;

    let mut bfrontier = fire_and_pin(machine, &mut z, &t);
    let mut step = 0usize;
    while nnz_sync(machine, &bfrontier) > 0 {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Superstep {
            phase: "backward",
            batch: batch_idx,
            step,
            frontier_nnz: bfrontier.nnz() as u64,
            active_rows: active_rows(&bfrontier),
        });
        step += 1;
        run.backward_iterations += 1;
        let back = mm_step::<BrandesKernel>(
            machine,
            plan,
            &bfrontier,
            dat,
            caches.as_mut().map(|(_, b)| &mut **b),
        )?;
        run.ops += back.ops;
        z = dmat_combine_anchored::<CentpathMonoid, _>(machine, &z, &back.c);
        bfrontier = fire_and_pin(machine, &mut z, &t);
    }

    // ---- λ accumulation (Algorithm 3, line 5) ----
    let products = dmat_zip_filter::<SumF64, _, _, f64>(machine, &z, &t, |s, v, zv, tv| {
        if v == chunk[s] {
            return None; // δ(s,s) is excluded by definition
        }
        tv.map(|mp| zv.p * mp.m)
    });
    let partial = dmat_column_sums(machine, &products);
    for (v, x) in partial.into_iter().enumerate() {
        run.scores.lambda[v] += x;
    }

    z.release_memory(machine);
    t.release_memory(machine);
    Ok(())
}

/// Number of distinct non-empty rows of a frontier — the batch
/// sources still active this superstep (`nbatch − active` have
/// converged). Only invoked from trace-event closures, so untraced
/// runs never pay for the scan.
fn active_rows<T: Clone + Send + Sync + PartialEq + std::fmt::Debug>(f: &DistMat<T>) -> u64 {
    let l = f.layout();
    let mut present = vec![false; f.nrows()];
    for bi in 0..l.br() {
        let r0 = l.row_range(bi).start;
        for bj in 0..l.bc() {
            for (i, _, _) in f.block(bi, bj).iter() {
                present[r0 + i] = true;
            }
        }
    }
    present.iter().filter(|&&b| b).count() as u64
}

/// Distributed counterpart of `seq::mfbr`'s fire-and-pin: emits the
/// frontier of zero-counter entries (carrying `ζ + 1/σ̄`) and pins
/// them to −1 in `Z`.
fn fire_and_pin(
    machine: &Machine,
    z: &mut DistMat<Centpath>,
    t: &DistMat<Multpath>,
) -> DistMat<Centpath> {
    let fired = dmat_zip_filter::<CentpathMonoid, _, _, _>(machine, z, t, |_, _, zv, tv| {
        if zv.c != 0 {
            return None;
        }
        let sigma = tv.expect("Z pattern ⊆ T pattern").m;
        mfbr_fire(zv, sigma)
    });
    *z = dmat_map_filter::<CentpathMonoid, _, _>(machine, z, |_, _, zv| {
        if zv.c == 0 {
            Some(Centpath::new(zv.w, zv.p, -1))
        } else {
            Some(*zv)
        }
    });
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brandes_unweighted;
    use mfbc_machine::MachineSpec;

    #[test]
    fn dist_matches_oracle_small() {
        let g = Graph::unweighted(
            6,
            false,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)],
        );
        let want = brandes_unweighted(&g);
        for p in [1usize, 4] {
            let machine = Machine::new(MachineSpec::test(p));
            let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).unwrap();
            assert!(
                run.scores.approx_eq(&want, 1e-9),
                "p={p}: {:?} vs {:?}",
                run.scores.lambda,
                want.lambda
            );
        }
    }

    #[test]
    fn ca_plan_shapes() {
        assert_eq!(ca_plan(1, 1), MmPlan::OneD(Variant1D::A));
        assert_eq!(
            ca_plan(16, 4),
            MmPlan::ThreeD {
                split: Variant1D::B,
                inner: Variant2D::AC,
                p1: 4,
                p2: 2,
                p3: 2
            }
        );
        assert_eq!(
            ca_plan(16, 1),
            MmPlan::TwoD {
                variant: Variant2D::AC,
                p2: 4,
                p3: 4
            }
        );
    }

    #[test]
    #[should_panic]
    fn ca_plan_rejects_nonsquare_layers() {
        let _ = ca_plan(8, 4); // p/c = 2 not a square
    }
}
