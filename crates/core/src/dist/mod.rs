//! Distributed MFBC over the simulated machine — the paper's two
//! parallel implementations (§6):
//!
//! * **CTF-MFBC** ([`PlanMode::Auto`]): every generalized matrix
//!   multiplication is planned by the autotuner, which searches data
//!   decompositions and 1D/2D/3D algorithm variants per operation;
//! * **CA-MFBC** ([`PlanMode::Ca`]): the fixed 3D processor grid of
//!   Theorem 5.1 — the adjacency matrix replicated over `c` layers
//!   (1D variant B), each layer running the stationary-adjacency 2D
//!   variant (AC) on a `√(p/c) × √(p/c)` grid;
//! * [`PlanMode::Fixed`] pins one explicit plan for every product
//!   (used by the ablation benchmarks).
//!
//! The driver mirrors `seq::{mfbf, mfbr, mfbc}` step for step; the
//! frontier-rule helpers are shared so the two implementations cannot
//! drift. Every matrix is canonically distributed; products charge
//! their communication to the machine's critical path; elementwise
//! steps charge local compute; per-iteration termination checks
//! charge an allreduce.

use crate::scores::BcScores;
use crate::seq::{mfbf_keep_in_frontier, mfbr_anchor, mfbr_fire};
use mfbc_algebra::kernel::{BellmanFordKernel, BrandesKernel};
use mfbc_algebra::monoid::SumF64;
use mfbc_algebra::{Centpath, CentpathMonoid, Multpath, MultpathMonoid};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::{Coo, Mask, MaskKind};
use mfbc_tensor::autotune::mm_auto_cached_masked;
use mfbc_tensor::cache::{CacheStats, MmCache};
use mfbc_tensor::ops::{
    dmat_combine, dmat_combine_anchored, dmat_fold_columns, dmat_map_filter, dmat_zip_filter,
    nnz_sync,
};
use mfbc_tensor::{canonical_layout, mm_exec_cached_masked, DistMat, MmPlan, Variant1D, Variant2D};

/// How multiplication plans are chosen.
#[derive(Clone, Debug)]
pub enum PlanMode {
    /// CTF-MFBC: autotune every product.
    Auto,
    /// CA-MFBC: the Theorem-5.1 grid with `c` adjacency replicas;
    /// requires `p/c` to be a perfect square.
    Ca {
        /// Replication factor `c ∈ [1, p]`.
        c: usize,
    },
    /// One fixed plan for every product.
    Fixed(MmPlan),
}

impl PlanMode {
    fn plan_for(&self, m: &Machine) -> Result<Option<MmPlan>, MachineError> {
        match self {
            PlanMode::Auto => Ok(None),
            PlanMode::Ca { c } => ca_plan(m.p(), *c).map(Some),
            PlanMode::Fixed(plan) => Ok(Some(plan.clone())),
        }
    }
}

/// The CA-MFBC plan: `p1 = c` layers replicating the (right-operand)
/// adjacency, inner 2D stationary-adjacency on `√(p/c) × √(p/c)`.
///
/// # Errors
/// Returns [`MachineError::InvalidConfig`] unless `c` divides `p` and
/// `p/c` is a perfect square — `c` comes straight from user
/// configuration (`--c`), so a bad value must surface as a message,
/// not a panic.
pub fn ca_plan(p: usize, c: usize) -> Result<MmPlan, MachineError> {
    if c < 1 || !p.is_multiple_of(c) {
        return Err(MachineError::invalid(format!(
            "replication factor c={c} must be in [1, p] and divide p={p}"
        )));
    }
    let layer = p / c;
    let r = (layer as f64).sqrt().round() as usize;
    if r * r != layer {
        return Err(MachineError::invalid(format!(
            "CA-MFBC needs p/c to be a perfect square, got p/c = {layer} (p={p}, c={c})"
        )));
    }
    if c == 1 {
        if r == 1 {
            return Ok(MmPlan::OneD(Variant1D::A));
        }
        return Ok(MmPlan::TwoD {
            variant: Variant2D::AC,
            p2: r,
            p3: r,
        });
    }
    Ok(MmPlan::ThreeD {
        split: Variant1D::B,
        inner: Variant2D::AC,
        p1: c,
        p2: r,
        p3: r,
    })
}

/// Configuration of a distributed MFBC run.
#[derive(Clone, Debug)]
pub struct MfbcConfig {
    /// Sources per batch (`n_b`); `None` chooses `min(n, 512)`, the
    /// batch size the paper's Table 3 uses.
    pub batch_size: Option<usize>,
    /// Plan selection mode.
    pub plan_mode: PlanMode,
    /// Cap on processed batches (benchmarks measure a single batch,
    /// as the paper's Table 3 does). `None` runs all `⌈n/n_b⌉`.
    pub max_batches: Option<usize>,
    /// Whether to amortize the adjacency's replication/redistribution
    /// across iterations and batches (Theorem 5.1's derivation;
    /// default true). `false` re-pays the preparation on every
    /// product — the ablation baseline.
    pub amortize_adjacency: bool,
    /// Source vertices to process; `None` means all of `0..n` (exact
    /// BC). An explicit subset computes the partial sums
    /// `Σ_{s ∈ S} δ(s, ·)` — the building block of sampled
    /// approximation (see [`crate::approx`]).
    pub sources: Option<Vec<usize>>,
    /// Shared-memory threads for the local kernels (`mfbc-parallel`
    /// pool size). `None` uses the process default (`MFBC_THREADS`
    /// env, else available parallelism). Results are bit-identical at
    /// any value.
    pub threads: Option<usize>,
    /// Whether forward frontier expansion runs under a
    /// complement-of-`Numsp` output mask (default true), pruning
    /// elementary products into already-discovered vertices before
    /// they are formed. Only applied on unit-weighted graphs, where a
    /// rediscovery can never improve a settled distance, so the
    /// masked run is score-bit-identical to the unmasked one; on
    /// weighted graphs the flag is ignored.
    pub masked: bool,
}

impl Default for MfbcConfig {
    fn default() -> MfbcConfig {
        MfbcConfig {
            batch_size: None,
            plan_mode: PlanMode::Auto,
            max_batches: None,
            amortize_adjacency: true,
            sources: None,
            threads: None,
            masked: true,
        }
    }
}

impl MfbcConfig {
    /// A config that pins every product to one explicit `plan` —
    /// the conformance harness's way of forcing a specific variant
    /// through the whole driver instead of going through autotune.
    pub fn fixed(plan: mfbc_tensor::MmPlan) -> MfbcConfig {
        MfbcConfig {
            plan_mode: PlanMode::Fixed(plan),
            ..MfbcConfig::default()
        }
    }

    /// A config using the CA-MFBC fixed 3D grid with replication `c`.
    pub fn ca(c: usize) -> MfbcConfig {
        MfbcConfig {
            plan_mode: PlanMode::Ca { c },
            ..MfbcConfig::default()
        }
    }

    /// Sets the per-batch source count, returning `self` for chaining.
    #[must_use]
    pub fn with_batch_size(mut self, nb: usize) -> MfbcConfig {
        self.batch_size = Some(nb);
        self
    }

    /// Sets the shared-memory thread count for the local kernels,
    /// returning `self` for chaining.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> MfbcConfig {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables the complement-of-`Numsp` output mask on
    /// forward expansion, returning `self` for chaining.
    #[must_use]
    pub fn with_masked(mut self, masked: bool) -> MfbcConfig {
        self.masked = masked;
        self
    }
}

/// What the driver did to survive injected or modeled failures.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// Faults the machine injected during the run.
    pub faults_injected: u64,
    /// In-place collective retries performed by the machine itself
    /// (transient faults absorbed below the driver).
    pub collective_retries: u64,
    /// Whole-batch restarts from a checkpoint (transient overflow or
    /// OOM at the minimum batch size).
    pub batch_retries: u64,
    /// Rank-crash recoveries: shrink to the survivors and replan.
    pub replans: u64,
    /// Checkpoint restorations (every recovery path restores one).
    pub checkpoints_restored: u64,
    /// OOM retreats that halved the batch size.
    pub oom_halvings: u64,
    /// Modeled seconds spent on work that was rolled back.
    pub wasted_modeled_s: f64,
    /// Ranks still alive at the end of the run.
    pub final_p: usize,
}

impl RecoveryStats {
    /// Whether anything at all went wrong (and was survived).
    pub fn any(&self) -> bool {
        self.faults_injected > 0 || self.checkpoints_restored > 0 || self.collective_retries > 0
    }
}

/// Statistics and result of a distributed MFBC run.
#[derive(Clone, Debug)]
pub struct MfbcRun {
    /// Accumulated centrality scores (exact if every batch ran).
    pub scores: BcScores,
    /// Batches processed.
    pub batches: usize,
    /// Sources actually processed (for TEPS accounting).
    pub sources_processed: usize,
    /// Total forward iterations.
    pub forward_iterations: usize,
    /// Total backward iterations.
    pub backward_iterations: usize,
    /// `Σ nnz(Fᵢ)` over forward frontiers.
    pub frontier_nnz: u64,
    /// Total kernel applications.
    pub ops: u64,
    /// Final cost report. After a crash recovery the driver runs on a
    /// *shrunk* machine whose tracker the caller's handle no longer
    /// sees, so consumers must read costs from here, not from the
    /// machine they passed in.
    pub report: mfbc_machine::cost::CostReport,
    /// Per-rank memory high-water marks in bytes, read from the final
    /// machine (after a crash recovery: the shrunk one, so the length
    /// is [`RecoveryStats::final_p`], not the starting rank count).
    /// Each entry is a monotone upper bound on every `memory_snapshot`
    /// the run ever took for that rank.
    pub peak_bytes: Vec<u64>,
    /// Fault-and-recovery accounting for the run.
    pub recovery: RecoveryStats,
}

/// Bound on checkpoint restarts of one batch (transient overflow or
/// OOM at the minimum batch size). With the machine's own in-place
/// retry underneath, this covers any recurrence the conformance
/// schedules generate; a longer-lived failure surfaces as the typed
/// error after the budget is spent.
const MAX_BATCH_RETRIES: u32 = 8;

/// Runs distributed MFBC on `machine`.
///
/// When [`MfbcConfig::threads`] is set, the whole run executes under
/// an `mfbc_parallel::with_threads` override, sizing every local
/// kernel's pool; results are bit-identical at any thread count.
///
/// # Fault tolerance
/// The driver checkpoints scores and batch progress at every batch
/// boundary. A failed collective restarts the batch from the
/// checkpoint (bounded retries); a rank crash shrinks the machine to
/// the survivors and replans every remaining product with the
/// autotuner; an out-of-memory failure halves the batch size and
/// resumes. Transient and OOM recovery never change the machine
/// shape, so their recovered scores are *bit-identical* to a
/// fault-free run. Crash recovery finishes the run on a smaller
/// machine whose plans group floating-point accumulations
/// differently, so its scores match a fault-free run to accumulation-
/// order tolerance (and exactly when the dependency values are
/// dyadic). [`RecoveryStats`] records what happened. After a crash
/// the caller's machine handle no longer tracks the run — read
/// [`MfbcRun::report`] instead.
///
/// # Errors
/// Propagates simulated out-of-memory failures that survive the
/// batch-size retreat, collective failures that outlive the retry
/// budget, and invalid plan configuration.
pub fn mfbc_dist(machine: &Machine, g: &Graph, cfg: &MfbcConfig) -> Result<MfbcRun, MachineError> {
    match cfg.threads {
        Some(t) => mfbc_parallel::with_threads(t, || mfbc_dist_inner(machine, g, cfg)),
        None => mfbc_dist_inner(machine, g, cfg),
    }
}

/// Releases everything a run keeps resident — on the way out of a
/// terminal (unrecoverable) error, so the meter balances.
fn release_run_state(
    m: &Machine,
    fwd_cache: &mut MmCache<mfbc_algebra::Dist>,
    back_cache: &mut MmCache<mfbc_algebra::Dist>,
    da: &DistMat<mfbc_algebra::Dist>,
    dat: &DistMat<mfbc_algebra::Dist>,
) {
    fwd_cache.release_all(m);
    back_cache.release_all(m);
    da.release_memory(m);
    dat.release_memory(m);
}

fn mfbc_dist_inner(
    machine: &Machine,
    g: &Graph,
    cfg: &MfbcConfig,
) -> Result<MfbcRun, MachineError> {
    let mut session = MfbcSession::new(machine, g, cfg)?;
    loop {
        match session.step() {
            Ok(SessionStep::Done) => break,
            Ok(SessionStep::Committed { .. }) => {}
            Err(e) => {
                // One-shot semantics: any error ends the run, so the
                // resident state is released before propagating (a
                // long-lived caller may instead keep the session and
                // retry the step — see `MfbcSession::step`).
                session.abort();
                return Err(e);
            }
        }
    }
    Ok(session.finish())
}

/// What one [`MfbcSession::step`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStep {
    /// One batch committed; `sources` of them were newly processed.
    Committed {
        /// Sources processed by the committed batch.
        sources: usize,
    },
    /// Nothing left to do: every requested source is processed, or
    /// the configured `max_batches` cap is reached.
    Done,
}

/// A resumable distributed MFBC computation: the batched driver loop
/// of [`mfbc_dist`], opened up so a long-lived caller (the
/// `mfbc-serve` engine) can advance it one committed batch at a time
/// while keeping the machine, the distributed adjacency, and the
/// prepared-adjacency caches warm between requests.
///
/// Invariants:
///
/// * Driving a session to completion with repeated [`step`] calls is
///   *the same code path* as [`mfbc_dist`] — the scores after `k`
///   committed batches are bit-identical to a one-shot run's partial
///   sums after the same `k` batches, and the final [`finish`] run
///   equals the one-shot [`MfbcRun`] field for field.
/// * A step that fails with a *retryable* error ([`MachineError::
///   CollectiveFailed`], or [`MachineError::OutOfMemory`] at the
///   minimum batch size) rolls back to the batch-boundary checkpoint
///   and leaves the session coherent: the caller may call [`step`]
///   again later (after its own backoff) and the retry resumes at the
///   same cursor. Unrecoverable errors (a crash on the last rank,
///   invalid configuration) poison the session: its resident state is
///   released and every later [`step`] fails fast.
/// * Crash faults are absorbed *inside* [`step`] by the shrink/replan
///   path, exactly as in the one-shot driver; the caller observes the
///   new rank count via [`machine`](MfbcSession::machine).
///
/// [`step`]: MfbcSession::step
/// [`finish`]: MfbcSession::finish
pub struct MfbcSession {
    g: Graph,
    cfg: MfbcConfig,
    /// Current machine; a crash recovery swaps in the shrunk one.
    m: Machine,
    /// Current batch size; the OOM retreat halves it.
    nb: usize,
    da: DistMat<mfbc_algebra::Dist>,
    dat: DistMat<mfbc_algebra::Dist>,
    plan: Option<MmPlan>,
    fwd_cache: MmCache<mfbc_algebra::Dist>,
    back_cache: MmCache<mfbc_algebra::Dist>,
    /// Counts folded in from caches retired by a crash replan, so
    /// [`cache_stats`](MfbcSession::cache_stats) spans cache
    /// generations.
    retired_cache_stats: CacheStats,
    run: MfbcRun,
    recovery: RecoveryStats,
    sources: Vec<usize>,
    /// Batch cursor over `sources`; advances only when a batch
    /// commits, so every recovery resumes exactly where it left off.
    cursor: usize,
    released: bool,
    poisoned: bool,
}

impl MfbcSession {
    /// Opens a session: distributes the adjacency and its transpose
    /// on `machine` (resident until [`finish`](MfbcSession::finish)
    /// or drop) and resolves the plan mode.
    ///
    /// # Errors
    /// Propagates memory-budget failures from charging the adjacency
    /// and invalid plan configuration.
    ///
    /// # Panics
    /// Panics if an explicit [`MfbcConfig::sources`] entry is out of
    /// range — same contract as [`mfbc_dist`].
    pub fn new(
        machine: &Machine,
        g: &Graph,
        cfg: &MfbcConfig,
    ) -> Result<MfbcSession, MachineError> {
        let n = g.n();
        let nb = cfg.batch_size.unwrap_or_else(|| n.min(512)).max(1);
        let m = machine.clone();

        // Adjacency and its transpose, canonically distributed and
        // resident for the whole session (rebuilt after a shrink —
        // the canonical layout depends on p).
        let da = DistMat::from_global(canonical_layout(&m, n, n), g.adjacency());
        let dat = DistMat::from_global(canonical_layout(&m, n, n), &g.adjacency_t());
        da.charge_memory(&m)?;
        dat.charge_memory(&m)?;

        let plan = cfg.plan_mode.plan_for(&m)?;
        let sources: Vec<usize> = match &cfg.sources {
            Some(s) => {
                for &v in s {
                    assert!(v < n, "source {v} out of range for n={n}");
                }
                s.clone()
            }
            None => (0..n).collect(),
        };
        Ok(MfbcSession {
            g: g.clone(),
            cfg: cfg.clone(),
            m,
            nb,
            da,
            dat,
            plan,
            // Prepared-adjacency caches: the Theorem-5.1
            // amortization. One cache per orientation; both released
            // (with their simulated residency) at end of session.
            fwd_cache: MmCache::new(),
            back_cache: MmCache::new(),
            retired_cache_stats: CacheStats::default(),
            run: MfbcRun {
                scores: BcScores::zeros(n),
                batches: 0,
                sources_processed: 0,
                forward_iterations: 0,
                backward_iterations: 0,
                frontier_nnz: 0,
                ops: 0,
                report: Default::default(),
                peak_bytes: Vec::new(),
                recovery: RecoveryStats::default(),
            },
            recovery: RecoveryStats::default(),
            sources,
            cursor: 0,
            released: false,
            poisoned: false,
        })
    }

    /// Commits the next batch (or reports [`SessionStep::Done`]).
    ///
    /// When [`MfbcConfig::threads`] is set the step runs under an
    /// `mfbc_parallel::with_threads` override (reentrant, so the
    /// [`mfbc_dist`] wrapper's own override composes).
    ///
    /// # Errors
    /// Retryable errors (`CollectiveFailed` past the per-step retry
    /// budget, `OutOfMemory` at `nb = 1`) leave the session rolled
    /// back to the batch boundary, ready for a later retry.
    /// Unrecoverable errors poison the session (see
    /// [`poisoned`](MfbcSession::poisoned)).
    pub fn step(&mut self) -> Result<SessionStep, MachineError> {
        if self.released {
            return Err(MachineError::invalid(
                "MFBC session is poisoned (resident state already released)",
            ));
        }
        if self.cursor >= self.sources.len() {
            return Ok(SessionStep::Done);
        }
        if let Some(max) = self.cfg.max_batches {
            if self.run.batches >= max {
                return Ok(SessionStep::Done);
            }
        }
        match self.cfg.threads {
            Some(t) => mfbc_parallel::with_threads(t, || self.step_inner()),
            None => self.step_inner(),
        }
    }

    fn step_inner(&mut self) -> Result<SessionStep, MachineError> {
        let n = self.g.n();
        'batches: loop {
            // ---- checkpoint (batch boundary) ----
            // Scores + progress are cloned; the memory meter and the
            // set of cached adjacency forms are snapshotted so a
            // rollback can discard mid-batch allocations and cache
            // entries without double-counting.
            let snapshot = self.m.memory_snapshot();
            let fwd_keys = self.fwd_cache.keys();
            let back_keys = self.back_cache.keys();
            let run_ckpt = self.run.clone();
            let mut batch_attempts = 0u32;
            loop {
                let end = (self.cursor + self.nb).min(self.sources.len());
                let chunk = &self.sources[self.cursor..end];
                let started_s = self.m.report().critical.total_time();
                let _span = mfbc_trace::span(|| format!("batch {}", self.run.batches));
                let caches = if self.cfg.amortize_adjacency {
                    Some((&mut self.fwd_cache, &mut self.back_cache))
                } else {
                    None
                };
                let masked = self.cfg.masked && self.g.is_unit_weighted();
                match batch(
                    &self.m,
                    &self.g,
                    &self.da,
                    &self.dat,
                    chunk,
                    self.plan.as_ref(),
                    masked,
                    caches,
                    &mut self.run,
                ) {
                    Ok(()) => {
                        let committed = chunk.len();
                        self.run.batches += 1;
                        self.run.sources_processed += committed;
                        self.cursor = end;
                        return Ok(SessionStep::Committed { sources: committed });
                    }
                    Err(e) => {
                        // Roll back to the checkpoint. Modeled time is
                        // *not* rolled back: the failed attempt's seconds
                        // stay on the clock and are reported as waste.
                        let wasted = self.m.report().critical.total_time() - started_s;
                        self.recovery.wasted_modeled_s += wasted;
                        self.recovery.checkpoints_restored += 1;
                        self.run = run_ckpt.clone();
                        self.m.restore_memory(&snapshot);
                        self.fwd_cache.discard_except(&fwd_keys);
                        self.back_cache.discard_except(&back_keys);
                        match e {
                            MachineError::CollectiveFailed { .. } => {
                                batch_attempts += 1;
                                if batch_attempts > MAX_BATCH_RETRIES {
                                    // Retryable: the checkpoint is
                                    // restored, state stays resident —
                                    // a long-lived caller may back off
                                    // and step again.
                                    return Err(e);
                                }
                                self.recovery.batch_retries += 1;
                                mfbc_trace::emit(|| mfbc_trace::TraceEvent::Recovery {
                                    action: "retry-batch",
                                    detail: format!("attempt {batch_attempts}: {e}"),
                                    wasted_s: wasted,
                                });
                            }
                            MachineError::RankFailed { rank, .. } => {
                                // Graceful degradation: release everything
                                // from the dead configuration, shrink to
                                // the survivors, rebuild the distributed
                                // state, and let the autotuner replan for
                                // the smaller machine.
                                release_run_state(
                                    &self.m,
                                    &mut self.fwd_cache,
                                    &mut self.back_cache,
                                    &self.da,
                                    &self.dat,
                                );
                                // Between here and the successful
                                // rebuild nothing is resident — a
                                // failure in the window must not
                                // release again.
                                self.released = true;
                                let old_p = self.m.p();
                                self.m = match self.m.shrink(rank) {
                                    Ok(m) => m,
                                    Err(e) => return Err(self.poison(e)),
                                };
                                self.da = DistMat::from_global(
                                    canonical_layout(&self.m, n, n),
                                    self.g.adjacency(),
                                );
                                self.dat = DistMat::from_global(
                                    canonical_layout(&self.m, n, n),
                                    &self.g.adjacency_t(),
                                );
                                if let Err(e) = self.da.charge_memory(&self.m) {
                                    return Err(self.poison(e));
                                }
                                if let Err(e) = self.dat.charge_memory(&self.m) {
                                    return Err(self.poison(e));
                                }
                                // Fold the retired caches' activity in
                                // before replacing them (release_all
                                // above already counted their
                                // evictions).
                                self.retired_cache_stats.absorb(self.fwd_cache.stats());
                                self.retired_cache_stats.absorb(self.back_cache.stats());
                                self.fwd_cache = MmCache::new();
                                self.back_cache = MmCache::new();
                                self.released = false;
                                self.plan = None; // degraded mode: autotune on the survivors
                                self.recovery.replans += 1;
                                mfbc_trace::emit(|| mfbc_trace::TraceEvent::Recovery {
                                    action: "replan",
                                    detail: format!("p={old_p}->{} plan=auto", self.m.p()),
                                    wasted_s: wasted,
                                });
                                // The snapshot predates the shrink (wrong
                                // rank count) — take a fresh checkpoint.
                                continue 'batches;
                            }
                            MachineError::OutOfMemory { .. } if self.nb > 1 => {
                                self.nb /= 2;
                                self.recovery.oom_halvings += 1;
                                mfbc_trace::emit(|| mfbc_trace::TraceEvent::Recovery {
                                    action: "shrink-batch",
                                    detail: format!("nb={}", self.nb),
                                    wasted_s: wasted,
                                });
                                continue 'batches;
                            }
                            MachineError::OutOfMemory { .. } => {
                                // Already at nb = 1: retry in place — an
                                // injected OOM fault has been consumed and
                                // will not re-fire; a real capacity limit
                                // exhausts the budget and propagates.
                                batch_attempts += 1;
                                if batch_attempts > MAX_BATCH_RETRIES {
                                    // Retryable, like CollectiveFailed.
                                    return Err(e);
                                }
                                self.recovery.batch_retries += 1;
                                mfbc_trace::emit(|| mfbc_trace::TraceEvent::Recovery {
                                    action: "retry-batch",
                                    detail: format!("attempt {batch_attempts}: {e}"),
                                    wasted_s: wasted,
                                });
                            }
                            other => return Err(self.poison(other)),
                        }
                    }
                }
            }
        }
    }

    /// Marks the session unusable after an unrecoverable error and
    /// releases its resident state so the memory meter balances.
    fn poison(&mut self, e: MachineError) -> MachineError {
        self.poisoned = true;
        self.release();
        e
    }

    fn release(&mut self) {
        if !self.released {
            release_run_state(
                &self.m,
                &mut self.fwd_cache,
                &mut self.back_cache,
                &self.da,
                &self.dat,
            );
            self.released = true;
        }
    }

    /// Releases the session's resident state without producing a run
    /// (idempotent; also done on drop).
    pub fn abort(&mut self) {
        self.release();
    }

    /// Whether an unrecoverable error has poisoned the session: its
    /// state is released and every later [`step`](MfbcSession::step)
    /// fails fast. A long-lived server maps this to "not ready".
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The machine the session currently runs on — after a crash
    /// recovery, the shrunk one.
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// The partial (or, once [`remaining_sources`](MfbcSession::
    /// remaining_sources) is 0, exact) accumulated scores: the sums
    /// `Σ δ(s,·)` over every source committed so far, bit-identical
    /// to a one-shot run's accumulator at the same batch count.
    pub fn scores(&self) -> &BcScores {
        &self.run.scores
    }

    /// Batches committed so far.
    pub fn batches(&self) -> usize {
        self.run.batches
    }

    /// Prepared-adjacency cache activity over the whole session,
    /// spanning cache generations retired by crash replans.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = self.retired_cache_stats;
        total.absorb(self.fwd_cache.stats());
        total.absorb(self.back_cache.stats());
        total
    }

    /// Sources committed so far.
    pub fn sources_processed(&self) -> usize {
        self.run.sources_processed
    }

    /// Total sources the session will process.
    pub fn sources_total(&self) -> usize {
        self.sources.len()
    }

    /// Sources not yet committed.
    pub fn remaining_sources(&self) -> usize {
        self.sources.len() - self.cursor
    }

    /// The current batch size (after any OOM halvings).
    pub fn batch_size(&self) -> usize {
        self.nb
    }

    /// Driver-level recovery accounting so far (the machine-side
    /// fields are filled in by [`finish`](MfbcSession::finish)).
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Releases the resident state and assembles the final
    /// [`MfbcRun`], exactly as the one-shot driver does on the way
    /// out. Idempotent in effect; the session is unusable afterwards.
    pub fn finish(&mut self) -> MfbcRun {
        self.release();
        let stats = self.m.fault_stats();
        let mut recovery = self.recovery.clone();
        recovery.faults_injected = stats.faults_injected;
        recovery.collective_retries = stats.retries;
        recovery.final_p = self.m.p();
        let mut run = self.run.clone();
        run.report = self.m.report();
        run.peak_bytes = self.m.memory_peaks();
        run.recovery = recovery;
        run
    }
}

impl Drop for MfbcSession {
    fn drop(&mut self) {
        self.release();
    }
}

fn mm_step<K: mfbc_algebra::SpMulKernel>(
    machine: &Machine,
    plan: Option<&MmPlan>,
    f: &DistMat<K::Left>,
    a: &DistMat<K::Right>,
    mask: Option<&Mask>,
    cache: Option<&mut MmCache<K::Right>>,
) -> Result<mfbc_tensor::MmOut<mfbc_algebra::kernel::KernelOut<K>>, MachineError> {
    match cache {
        Some(cache) => match plan {
            Some(p) => mm_exec_cached_masked::<K>(machine, p, f, a, mask, cache),
            None => mm_auto_cached_masked::<K>(machine, f, a, mask, cache).map(|(out, _)| out),
        },
        // Un-amortized: every product pays its own preparation.
        None => match plan {
            Some(p) => mfbc_tensor::mm_exec_masked::<K>(machine, p, f, a, mask),
            None => mfbc_tensor::mm_auto_masked::<K>(machine, f, a, mask).map(|(out, _)| out),
        },
    }
}

/// The complement mask of a distributed matrix's pattern — for the
/// forward step, `T` (`Numsp`) holds every vertex already discovered
/// per source, so its complement admits exactly the undiscovered
/// coordinates. The mask pattern is assembled from the resident
/// blocks; like canonical output assembly, its movement is not
/// charged (see DESIGN.md).
fn complement_mask_of<T: Clone + Send + Sync + PartialEq + std::fmt::Debug>(
    t: &DistMat<T>,
) -> Mask {
    pattern_mask_of(MaskKind::Complement, t)
}

/// A mask of the given kind over a distributed matrix's pattern. The
/// pattern is assembled from the resident blocks; like canonical
/// output assembly, its movement is not charged (see DESIGN.md).
pub(crate) fn pattern_mask_of<T: Clone + Send + Sync + PartialEq + std::fmt::Debug>(
    kind: MaskKind,
    t: &DistMat<T>,
) -> Mask {
    let l = t.layout();
    let mut coords = Vec::with_capacity(t.nnz());
    for bi in 0..l.br() {
        let r0 = l.row_range(bi).start;
        for bj in 0..l.bc() {
            let c0 = l.col_range(bj).start;
            for (i, j, _) in t.block(bi, bj).iter() {
                coords.push((r0 + i, c0 + j));
            }
        }
    }
    Mask::from_coords(kind, t.nrows(), t.ncols(), &coords)
}

#[allow(clippy::too_many_arguments)]
fn batch(
    machine: &Machine,
    g: &Graph,
    da: &DistMat<mfbc_algebra::Dist>,
    dat: &DistMat<mfbc_algebra::Dist>,
    chunk: &[usize],
    plan: Option<&MmPlan>,
    masked: bool,
    mut caches: Option<(
        &mut MmCache<mfbc_algebra::Dist>,
        &mut MmCache<mfbc_algebra::Dist>,
    )>,
    run: &mut MfbcRun,
) -> Result<(), MachineError> {
    let n = g.n();
    let nbatch = chunk.len();

    // ---- MFBF (Algorithm 1) ----
    // One-edge seeds form the initial frontier; the table also gets
    // the (0, 1) diagonal — see seq::mfbf's module docs.
    let mut init = Coo::new(nbatch, n);
    for (s, &src) in chunk.iter().enumerate() {
        for (v, w) in g.neighbors(src) {
            init.push(s, v, Multpath::new(w, 1.0));
        }
    }
    let mut with_diag = Coo::new(nbatch, n);
    for (s, &src) in chunk.iter().enumerate() {
        with_diag.push(s, src, Multpath::trivial());
    }
    let frontier_layout = canonical_layout(machine, nbatch, n);
    let frontier_init =
        DistMat::from_global(frontier_layout.clone(), &init.into_csr::<MultpathMonoid>());
    let diag = DistMat::from_global(
        frontier_layout.clone(),
        &with_diag.into_csr::<MultpathMonoid>(),
    );
    let mut t = dmat_combine::<MultpathMonoid, _>(machine, &frontier_init, &diag);
    t.charge_memory(machine)?;
    let mut frontier = frontier_init;

    let batch_idx = run.batches;
    // Phase spans bracket the BSP loops so timeline/Chrome views can
    // attribute supersteps to their MFBF/MFBr phase; the profiler and
    // cost meters ignore spans entirely.
    let forward_span = mfbc_trace::span(|| format!("batch{batch_idx}/forward"));
    let mut step = 0usize;
    while nnz_sync(machine, &frontier)? > 0 {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Superstep {
            phase: "forward",
            batch: batch_idx,
            step,
            frontier_nnz: frontier.nnz() as u64,
            active_rows: active_rows(&frontier),
        });
        step += 1;
        run.forward_iterations += 1;
        run.frontier_nnz += frontier.nnz() as u64;
        // T holds every (source, vertex) pair already discovered;
        // expansion only needs the rest. On unit-weighted graphs a
        // rediscovery always loses the distance combine *and* the
        // frontier filter, so pruning it at the multiply changes
        // nothing downstream — it just skips the products (and lets
        // redistribution skip B columns the mask rules out).
        let mask = masked.then(|| complement_mask_of(&t));
        let explored = mm_step::<BellmanFordKernel>(
            machine,
            plan,
            &frontier,
            da,
            mask.as_ref(),
            caches.as_mut().map(|(f, _)| &mut **f),
        )?;
        run.ops += explored.ops;
        let t_new = dmat_combine::<MultpathMonoid, _>(machine, &t, &explored.c);
        frontier = dmat_zip_filter::<MultpathMonoid, _, _, _>(
            machine,
            &explored.c,
            &t_new,
            |_, _, gv, tv| mfbf_keep_in_frontier(gv, tv),
        );
        t.release_memory(machine);
        t = t_new;
        t.charge_memory(machine)?;
    }
    drop(forward_span);

    // ---- MFBr (Algorithm 2) ----
    // Every backward product is consumed anchored on T's pattern:
    // `counted` through a zip keyed on T, the loop updates through
    // `combine_anchored` (Z's pattern ⊆ T's, fixed). Contributions at
    // (source, vertex) pairs outside T are inert garbage the anchors
    // drop, so a structural mask of T skips those products — and lets
    // redistribution drop Aᵀ columns of vertices no source discovered.
    let bmask = masked.then(|| pattern_mask_of(MaskKind::Structural, &t));
    let seeds = dmat_map_filter::<CentpathMonoid, _, _>(machine, &t, |_, _, mp: &Multpath| {
        Some(Centpath::new(mp.w, 0.0, 1))
    });
    let counted = mm_step::<BrandesKernel>(
        machine,
        plan,
        &seeds,
        dat,
        bmask.as_ref(),
        caches.as_mut().map(|(_, b)| &mut **b),
    )?;
    run.ops += counted.ops;
    let mut z =
        dmat_zip_filter::<CentpathMonoid, _, _, _>(machine, &t, &counted.c, |_, _, mp, d| {
            Some(mfbr_anchor(mp, d))
        });
    z.charge_memory(machine)?;

    let mut bfrontier = fire_and_pin(machine, &mut z, &t);
    let backward_span = mfbc_trace::span(|| format!("batch{batch_idx}/backward"));
    let mut step = 0usize;
    while nnz_sync(machine, &bfrontier)? > 0 {
        mfbc_trace::emit(|| mfbc_trace::TraceEvent::Superstep {
            phase: "backward",
            batch: batch_idx,
            step,
            frontier_nnz: bfrontier.nnz() as u64,
            active_rows: active_rows(&bfrontier),
        });
        step += 1;
        run.backward_iterations += 1;
        let back = mm_step::<BrandesKernel>(
            machine,
            plan,
            &bfrontier,
            dat,
            bmask.as_ref(),
            caches.as_mut().map(|(_, b)| &mut **b),
        )?;
        run.ops += back.ops;
        z = dmat_combine_anchored::<CentpathMonoid, _>(machine, &z, &back.c);
        bfrontier = fire_and_pin(machine, &mut z, &t);
    }
    drop(backward_span);

    // ---- λ accumulation (Algorithm 3, line 5) ----
    let products = dmat_zip_filter::<SumF64, _, _, f64>(machine, &z, &t, |s, v, zv, tv| {
        if v == chunk[s] {
            return None; // δ(s,s) is excluded by definition
        }
        tv.map(|mp| zv.p * mp.m)
    });
    // Fold per-source contributions into λ in ascending global source
    // order: the accumulation each λ[v] sees is independent of the
    // batch size, so an OOM retreat or a post-crash replan reproduces
    // the fault-free scores bit for bit.
    dmat_fold_columns(machine, &products, &mut run.scores.lambda)?;

    z.release_memory(machine);
    t.release_memory(machine);
    Ok(())
}

/// Number of distinct non-empty rows of a frontier — the batch
/// sources still active this superstep (`nbatch − active` have
/// converged). Only invoked from trace-event closures, so untraced
/// runs never pay for the scan.
fn active_rows<T: Clone + Send + Sync + PartialEq + std::fmt::Debug>(f: &DistMat<T>) -> u64 {
    let l = f.layout();
    let mut present = vec![false; f.nrows()];
    for bi in 0..l.br() {
        let r0 = l.row_range(bi).start;
        for bj in 0..l.bc() {
            for (i, _, _) in f.block(bi, bj).iter() {
                present[r0 + i] = true;
            }
        }
    }
    present.iter().filter(|&&b| b).count() as u64
}

/// Distributed counterpart of `seq::mfbr`'s fire-and-pin: emits the
/// frontier of zero-counter entries (carrying `ζ + 1/σ̄`) and pins
/// them to −1 in `Z`.
fn fire_and_pin(
    machine: &Machine,
    z: &mut DistMat<Centpath>,
    t: &DistMat<Multpath>,
) -> DistMat<Centpath> {
    let fired = dmat_zip_filter::<CentpathMonoid, _, _, _>(machine, z, t, |_, _, zv, tv| {
        if zv.c != 0 {
            return None;
        }
        let sigma = tv.expect("Z pattern ⊆ T pattern").m;
        mfbr_fire(zv, sigma)
    });
    *z = dmat_map_filter::<CentpathMonoid, _, _>(machine, z, |_, _, zv| {
        if zv.c == 0 {
            Some(Centpath::new(zv.w, zv.p, -1))
        } else {
            Some(*zv)
        }
    });
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brandes_unweighted;
    use mfbc_machine::MachineSpec;

    #[test]
    fn dist_matches_oracle_small() {
        let g = Graph::unweighted(
            6,
            false,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)],
        );
        let want = brandes_unweighted(&g);
        for p in [1usize, 4] {
            let machine = Machine::new(MachineSpec::test(p));
            let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).unwrap();
            assert!(
                run.scores.approx_eq(&want, 1e-9),
                "p={p}: {:?} vs {:?}",
                run.scores.lambda,
                want.lambda
            );
        }
    }

    #[test]
    fn run_carries_memory_peaks() {
        let g = Graph::unweighted(
            6,
            false,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)],
        );
        let machine = Machine::new(MachineSpec::test(4));
        let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).unwrap();
        assert_eq!(run.peak_bytes.len(), run.recovery.final_p);
        assert!(
            run.peak_bytes.iter().any(|&b| b > 0),
            "a run that distributed an adjacency must have touched memory"
        );
        // End-of-run state: everything released, yet the high-water
        // marks still bound the (now empty) residency and match the
        // machine's own peak meters.
        let snap = machine.memory_snapshot();
        for (r, &peak) in run.peak_bytes.iter().enumerate() {
            assert!(peak >= snap.resident()[r]);
            assert_eq!(peak, snap.peak()[r]);
        }
    }

    #[test]
    fn ca_plan_shapes() {
        assert_eq!(ca_plan(1, 1).unwrap(), MmPlan::OneD(Variant1D::A));
        assert_eq!(
            ca_plan(16, 4).unwrap(),
            MmPlan::ThreeD {
                split: Variant1D::B,
                inner: Variant2D::AC,
                p1: 4,
                p2: 2,
                p3: 2
            }
        );
        assert_eq!(
            ca_plan(16, 1).unwrap(),
            MmPlan::TwoD {
                variant: Variant2D::AC,
                p2: 4,
                p3: 4
            }
        );
    }

    #[test]
    fn ca_plan_rejects_bad_configs() {
        // p/c = 2 is not a perfect square.
        assert!(matches!(
            ca_plan(8, 4),
            Err(MachineError::InvalidConfig { .. })
        ));
        // c does not divide p.
        assert!(matches!(
            ca_plan(8, 3),
            Err(MachineError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ca_plan(8, 0),
            Err(MachineError::InvalidConfig { .. })
        ));
    }

    fn ladder() -> Graph {
        Graph::unweighted(
            8,
            false,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (1, 5),
                (2, 6),
            ],
        )
    }

    fn faulted_run(p: usize, spec: &str, cfg: MfbcConfig) -> (MfbcRun, MfbcRun) {
        use mfbc_machine::{FaultPlan, MachineSpec, RetryPolicy};
        let g = ladder();
        let clean = mfbc_dist(&Machine::new(MachineSpec::test(p)), &g, &cfg).unwrap();
        let plan = FaultPlan::parse(spec).unwrap();
        let m = Machine::with_faults(MachineSpec::test(p), plan, RetryPolicy::default());
        let faulted = mfbc_dist(&m, &g, &cfg).unwrap();
        (clean, faulted)
    }

    #[test]
    fn masked_forward_is_bit_identical_and_cheaper() {
        let g = ladder();
        for p in [1usize, 4] {
            let run_with = |masked: bool| {
                let m = Machine::new(MachineSpec::test(p));
                mfbc_dist(&m, &g, &MfbcConfig::default().with_masked(masked)).unwrap()
            };
            let unmasked = run_with(false);
            let masked = run_with(true);
            let ub: Vec<u64> = unmasked.scores.lambda.iter().map(|v| v.to_bits()).collect();
            let mb: Vec<u64> = masked.scores.lambda.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ub, mb, "p={p}: masking changed the scores");
            assert!(
                masked.ops < unmasked.ops,
                "p={p}: masked {} !< unmasked {}",
                masked.ops,
                unmasked.ops
            );
        }
    }

    #[test]
    fn weighted_graphs_ignore_the_mask_flag() {
        // Weighted: rediscoveries can improve distances, so the
        // driver must not mask — and scores must match regardless of
        // the flag.
        use mfbc_algebra::Dist;
        let g = Graph::new(
            5,
            false,
            vec![
                (0, 1, Dist::new(2)),
                (1, 2, Dist::new(3)),
                (0, 2, Dist::new(9)),
                (2, 3, Dist::new(1)),
                (3, 4, Dist::new(4)),
            ],
        );
        let run_with = |masked: bool| {
            let m = Machine::new(MachineSpec::test(4));
            mfbc_dist(&m, &g, &MfbcConfig::default().with_masked(masked)).unwrap()
        };
        let a = run_with(true);
        let b = run_with(false);
        let ab: Vec<u64> = a.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = b.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
        assert_eq!(a.ops, b.ops, "weighted run must ignore `masked`");
    }

    #[test]
    fn crash_recovery_replans_and_matches_fault_free() {
        let cfg = MfbcConfig::default().with_batch_size(2);
        let (clean, faulted) = faulted_run(8, "crash:3@5", cfg);
        assert_eq!(faulted.recovery.replans, 1);
        assert_eq!(faulted.recovery.final_p, 7);
        assert!(faulted.recovery.faults_injected >= 1);
        assert!(faulted.recovery.wasted_modeled_s > 0.0);
        let clean_bits: Vec<u64> = clean.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let fault_bits: Vec<u64> = faulted.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(clean_bits, fault_bits, "crash recovery changed the scores");
    }

    #[test]
    fn transient_fault_is_absorbed() {
        let cfg = MfbcConfig::default().with_batch_size(4);
        let (clean, faulted) = faulted_run(4, "transient:2@3", cfg);
        assert!(faulted.recovery.collective_retries >= 1);
        assert_eq!(faulted.recovery.replans, 0);
        let clean_bits: Vec<u64> = clean.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let fault_bits: Vec<u64> = faulted.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(clean_bits, fault_bits);
    }

    #[test]
    fn session_steps_match_one_shot_bit_for_bit() {
        // Driving a session step by step must be indistinguishable —
        // scores, counters, modeled costs, memory peaks — from the
        // one-shot wrapper, which is the property the serve engine's
        // exact responses rely on.
        let g = ladder();
        let cfg = MfbcConfig::default().with_batch_size(2);
        let one_shot = mfbc_dist(&Machine::new(MachineSpec::test(4)), &g, &cfg).unwrap();

        let m = Machine::new(MachineSpec::test(4));
        let mut session = MfbcSession::new(&m, &g, &cfg).unwrap();
        let mut committed = 0;
        let mut partials: Vec<Vec<u64>> = Vec::new();
        while let SessionStep::Committed { sources } = session.step().unwrap() {
            committed += sources;
            partials.push(
                session
                    .scores()
                    .lambda
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
            assert_eq!(session.sources_processed(), committed);
        }
        assert_eq!(committed, g.n());
        assert_eq!(session.remaining_sources(), 0);
        let run = session.finish();

        let a: Vec<u64> = one_shot.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = run.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "incremental scores differ from one-shot");
        assert_eq!(run.batches, one_shot.batches);
        assert_eq!(run.ops, one_shot.ops);
        assert_eq!(run.frontier_nnz, one_shot.frontier_nnz);
        assert_eq!(
            run.report.critical.total_time().to_bits(),
            one_shot.report.critical.total_time().to_bits(),
            "modeled time diverged"
        );
        assert_eq!(run.peak_bytes, one_shot.peak_bytes);
        // Each committed prefix is a strict accumulation: the last
        // partial equals the final scores.
        assert_eq!(partials.last().unwrap(), &b);
    }

    #[test]
    fn session_respects_max_batches_and_reports_done() {
        let g = ladder();
        let cfg = MfbcConfig {
            max_batches: Some(2),
            ..MfbcConfig::default().with_batch_size(2)
        };
        let m = Machine::new(MachineSpec::test(2));
        let mut session = MfbcSession::new(&m, &g, &cfg).unwrap();
        assert!(matches!(
            session.step().unwrap(),
            SessionStep::Committed { sources: 2 }
        ));
        assert!(matches!(
            session.step().unwrap(),
            SessionStep::Committed { sources: 2 }
        ));
        assert_eq!(session.step().unwrap(), SessionStep::Done);
        assert_eq!(session.batches(), 2);
        assert!(!session.poisoned());
    }

    #[test]
    fn session_survives_crash_mid_stream() {
        // A crash fault absorbed inside step(): the session shrinks,
        // keeps going, and its final scores match the fault-free run
        // (the ladder's dependency values are dyadic).
        use mfbc_machine::{FaultPlan, RetryPolicy};
        let g = ladder();
        let cfg = MfbcConfig::default().with_batch_size(2);
        let clean = mfbc_dist(&Machine::new(MachineSpec::test(8)), &g, &cfg).unwrap();
        let m = Machine::with_faults(
            MachineSpec::test(8),
            FaultPlan::parse("crash:3@5").unwrap(),
            RetryPolicy::default(),
        );
        let mut session = MfbcSession::new(&m, &g, &cfg).unwrap();
        while session.step().unwrap() != SessionStep::Done {}
        assert_eq!(session.machine().p(), 7, "shrink not visible to caller");
        let run = session.finish();
        assert_eq!(run.recovery.replans, 1);
        let a: Vec<u64> = clean.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = run.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn session_retryable_failure_keeps_state_for_a_later_retry() {
        // A transient recurrence deep enough to outlive the machine's
        // in-place retries *and* the per-step batch retries makes
        // step() fail — but the session stays coherent, and a later
        // step() (the serve engine's backoff path) finishes the job
        // bit-identically to a fault-free run.
        use mfbc_machine::{FaultPlan, RetryPolicy};
        let g = ladder();
        let cfg = MfbcConfig::default().with_batch_size(4);
        let clean = mfbc_dist(&Machine::new(MachineSpec::test(4)), &g, &cfg).unwrap();
        // Machine retries 3 attempts per collective; the driver
        // retries the batch 8 more times => 27 failed attempts per
        // step. A recurrence of 40 survives the first step call.
        let m = Machine::with_faults(
            MachineSpec::test(4),
            FaultPlan::parse("transient:40@3").unwrap(),
            RetryPolicy::default(),
        );
        let mut session = MfbcSession::new(&m, &g, &cfg).unwrap();
        let err = loop {
            match session.step() {
                Ok(SessionStep::Done) => panic!("expected the first step to exhaust its budget"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, MachineError::CollectiveFailed { .. }));
        assert!(!session.poisoned(), "retryable error must not poison");
        // Second try from the same cursor: the remaining recurrence
        // budget is consumed and the run completes.
        while session.step().unwrap() != SessionStep::Done {}
        let run = session.finish();
        let a: Vec<u64> = clean.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = run.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert!(run.recovery.batch_retries >= 1);
    }

    #[test]
    fn session_poisons_on_unrecoverable_crash() {
        // A crash on a 2-rank machine under a per-rank memory budget
        // that fits the halved state but not the whole problem: the
        // shrink succeeds, but rebuilding the adjacency on the single
        // survivor overflows the budget — unrecoverable. The session
        // poisons, later steps fail fast, and dropping it
        // double-releases nothing. (On a 1-rank machine faults never
        // fire at all: size-1 groups skip the collective fault gate;
        // and with a looser budget the batch-halving path would
        // absorb the pressure — only the fixed adjacency footprint is
        // immovable, so nb = 1 keeps temporaries out of the picture.)
        use mfbc_graph::gen::uniform;
        use mfbc_machine::{FaultPlan, RetryPolicy};
        let g = uniform(48, 600, false, None, 3);
        // Probed footprints for this graph at nb = 1: peak 19 160
        // B/rank at p = 2; adjacency (da + dat) alone is 22 560 B on
        // one rank — 21 000 B admits the former, rejects the latter.
        let spec = MachineSpec {
            mem_bytes: Some(21_000),
            ..MachineSpec::test(2)
        };
        let m = Machine::with_faults(
            spec,
            FaultPlan::parse("crash:0@2").unwrap(),
            RetryPolicy::default(),
        );
        let cfg = MfbcConfig::default().with_batch_size(1);
        let mut session = MfbcSession::new(&m, &g, &cfg).unwrap();
        let err = loop {
            match session.step() {
                Ok(SessionStep::Done) => panic!("rebuild over budget must be unrecoverable"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, MachineError::OutOfMemory { .. }), "{err}");
        assert!(session.poisoned());
        assert!(session.step().is_err(), "poisoned session must fail fast");
    }

    #[test]
    fn oom_fault_halves_batch_and_matches() {
        let cfg = MfbcConfig::default().with_batch_size(4);
        let (clean, faulted) = faulted_run(4, "oom:1@4", cfg);
        assert!(
            faulted.recovery.oom_halvings >= 1 || faulted.recovery.batch_retries >= 1,
            "OOM fault was never acted on: {:?}",
            faulted.recovery
        );
        let clean_bits: Vec<u64> = clean.scores.lambda.iter().map(|v| v.to_bits()).collect();
        let fault_bits: Vec<u64> = faulted.scores.lambda.iter().map(|v| v.to_bits()).collect();
        assert_eq!(clean_bits, fault_bits);
    }
}
