//! Connected components via algebraic label propagation — a worked
//! instance of the paper's extensibility claim ("Our design
//! methodology is readily extensible to other graph problems", §1/§8).
//!
//! Components are computed by iterating `x ← x •⟨min,·⟩ A` over the
//! *min-label* structure: each vertex holds a candidate component
//! label (initially its own id), and every product propagates the
//! smallest label across edges — the same maximal-frontier loop as
//! MFBF with a different monoid. Converges in `O(component
//! diameter)` iterations.

use mfbc_algebra::monoid::{CommutativeMonoid, Monoid};
use mfbc_algebra::{Dist, SpMulKernel};
use mfbc_graph::Graph;
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::{spgemm, Coo, Csr};

/// `(u64, min)` monoid over labels with `u64::MAX` as "no label".
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MinLabel;

impl Monoid for MinLabel {
    type Elem = u64;

    #[inline]
    fn combine(a: &u64, b: &u64) -> u64 {
        *a.min(b)
    }

    #[inline]
    fn identity() -> u64 {
        u64::MAX
    }
}

impl CommutativeMonoid for MinLabel {}

/// Label-propagation kernel: a frontier of labels times the adjacency
/// structure, keeping minima. Edge weights are ignored — only
/// connectivity matters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct LabelKernel;

impl SpMulKernel for LabelKernel {
    type Left = u64;
    type Right = Dist;
    type Acc = MinLabel;

    #[inline]
    fn mul(a: &u64, b: &Dist) -> Option<u64> {
        if *a == u64::MAX || !b.is_finite() {
            None
        } else {
            Some(*a)
        }
    }
}

/// Weakly-connected component labels: `labels[v]` is the smallest
/// vertex id reachable from `v` treating edges as undirected. Two
/// vertices share a component iff their labels are equal; isolated
/// vertices are their own components.
pub fn connected_components(g: &Graph) -> Vec<u64> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Work on the symmetrized structure (weak connectivity).
    let adj = if g.directed() {
        let t = g.adjacency_t();
        combine::<mfbc_algebra::monoid::MinDist, _>(g.adjacency(), &t)
    } else {
        g.adjacency().clone()
    };

    // Labels as a 1 × n row: x(0, v) = v.
    let mut labels_coo = Coo::new(1, n);
    for v in 0..n {
        labels_coo.push(0, v, v as u64);
    }
    let mut labels: Csr<u64> = labels_coo.into_csr::<MinLabel>();
    let mut frontier = labels.clone();

    while !frontier.is_empty() {
        let explored = spgemm::<LabelKernel>(&frontier, &adj).mat;
        let updated = combine::<MinLabel, _>(&labels, &explored);
        frontier = explored
            .filter(|s, v, lab| updated.get(s, v) == Some(lab) && labels.get(s, v) != Some(lab));
        labels = updated;
    }

    (0..n)
        .map(|v| *labels.get(0, v).expect("every vertex keeps a label"))
        .collect()
}

/// Number of weakly-connected components.
pub fn component_count(g: &Graph) -> usize {
    let labels = connected_components(g);
    let mut uniq = labels;
    uniq.sort_unstable();
    uniq.dedup();
    uniq.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_graph::gen::uniform;
    use mfbc_graph::stats::bfs_hops;

    #[test]
    fn two_paths_and_an_isolate() {
        let g = Graph::unweighted(7, false, vec![(0, 1), (1, 2), (4, 5), (5, 6)]);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[3], 3, "isolate keeps its own id");
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn directed_edges_connect_weakly() {
        let g = Graph::unweighted(4, true, vec![(0, 1), (2, 1), (3, 2)]);
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn labels_are_component_minima() {
        let g = Graph::unweighted(6, false, vec![(5, 3), (3, 4), (1, 2)]);
        let labels = connected_components(&g);
        assert_eq!(labels[5], 3);
        assert_eq!(labels[4], 3);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn matches_bfs_reachability_on_random_graphs() {
        for seed in 0..4 {
            let g = uniform(60, 80, false, None, seed);
            let labels = connected_components(&g);
            for v in 0..g.n() {
                let hops = bfs_hops(&g, v);
                for u in 0..g.n() {
                    let connected = hops[u] != usize::MAX;
                    assert_eq!(labels[u] == labels[v], connected, "seed {seed}: ({v},{u})");
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::unweighted(0, false, Vec::<(usize, usize)>::new());
        assert!(connected_components(&g).is_empty());
        assert_eq!(component_count(&g), 0);
    }
}
