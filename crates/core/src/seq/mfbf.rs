//! MFBF — Maximal Frontier Bellman-Ford (Algorithm 1), sequential.
//!
//! Computes, for a batch of source vertices `®s`, the multpath matrix
//! `T` with `T(s,v) = (τ(®s(s),v), σ̄(®s(s),v))`: shortest-path
//! distances *and* multiplicities, by relaxing all edges adjacent to
//! vertices whose path information changed in the previous iteration
//! (the *maximal frontier*).
//!
//! Sparse-representation note: the paper initializes `T(s,v) =
//! (A(®s(s),v), 1)` including `(∞, 1)` entries for non-edges so they
//! are "considered in the main loop". Under our sparse-zero
//! convention `(∞, ·)` entries are never stored — the Bellman–Ford
//! kernel annihilates them — which realizes the same semantics
//! without materializing `n·n_b` placeholder entries. The diagonal
//! is seeded as the ground truth `T(s, ®s(s)) = (0, 1)` — present in
//! the table but *not* in the initial frontier (seeding it in the
//! frontier would double-count the pre-seeded one-edge paths). With
//! the paper's literal `(A(s,s), 1) = (∞, 1)` diagonal, a
//! finite-weight cycle back to the source would overwrite `τ(s,s)`
//! with the cycle length and let MFBr back-propagate spurious factors
//! onto cycle vertices (see the `cycle_back_to_source` test).

use crate::seq::mfbf_keep_in_frontier;
use mfbc_algebra::kernel::BellmanFordKernel;
use mfbc_algebra::{Multpath, MultpathMonoid};
use mfbc_graph::Graph;
use mfbc_sparse::elementwise::combine;
use mfbc_sparse::{spgemm, Coo, Csr};

/// Result of a sequential MFBF run.
#[derive(Clone, Debug)]
pub struct MfbfOut {
    /// `T(s,v) = (τ, σ̄)` for each batch row `s` and vertex `v`.
    pub t: Csr<Multpath>,
    /// Iterations of the relaxation loop (≤ the shortest-path hop
    /// bound `d`; for weighted graphs each weight correction adds
    /// rounds — §5.3.1).
    pub iterations: usize,
    /// `Σᵢ nnz(Fᵢ)` — the frontier-volume term of Theorem 5.1.
    pub frontier_nnz: u64,
    /// `Σᵢ nnz(Gᵢ)` — the explored-volume term.
    pub explored_nnz: u64,
    /// Total elementary relaxations (`ops`).
    pub ops: u64,
}

/// Runs Algorithm 1 for the given source vertices.
pub fn mfbf_seq(g: &Graph, sources: &[usize]) -> MfbfOut {
    let n = g.n();
    let nb = sources.len();
    let a = g.adjacency();

    // Line 1: T(s,v) := (A(®s(s),v), 1) — one-edge paths.
    let mut init = Coo::new(nb, n);
    for (s, &src) in sources.iter().enumerate() {
        assert!(src < n, "source {src} out of range");
        for (v, w) in g.neighbors(src) {
            init.push(s, v, Multpath::new(w, 1.0));
        }
    }
    // Line 2: the initial frontier is the one-edge table (without
    // the diagonal — see the module docs).
    let frontier_init = init.into_csr::<MultpathMonoid>();
    let mut diag = Coo::new(nb, n);
    for (s, &src) in sources.iter().enumerate() {
        diag.push(s, src, Multpath::trivial());
    }
    let mut t = combine::<MultpathMonoid, _>(&frontier_init, &diag.into_csr::<MultpathMonoid>());
    let mut frontier = frontier_init;

    let mut iterations = 0usize;
    let mut frontier_nnz = frontier.nnz() as u64;
    let mut explored_nnz = 0u64;
    let mut ops = 0u64;

    // Line 3: loop while the frontier carries any path.
    while !frontier.is_empty() {
        iterations += 1;
        // Line 4: explore nodes adjacent to the frontier.
        let explored = spgemm::<BellmanFordKernel>(&frontier, a);
        ops += explored.ops;
        let g_mat = explored.mat;
        explored_nnz += g_mat.nnz() as u64;
        // Line 5: accumulate multiplicities.
        let t_new = combine::<MultpathMonoid, _>(&t, &g_mat);
        // Line 6: the next frontier keeps explored entries whose
        // weight survived the accumulation.
        frontier = g_mat.filter(|s, v, gv| mfbf_keep_in_frontier(gv, t_new.get(s, v)).is_some());
        frontier_nnz += frontier.nnz() as u64;
        t = t_new;
    }

    MfbfOut {
        t,
        iterations,
        frontier_nnz,
        explored_nnz,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfbc_algebra::Dist;

    fn tau(out: &MfbfOut, s: usize, v: usize) -> Option<(u64, f64)> {
        out.t.get(s, v).map(|mp| (mp.w.raw(), mp.m))
    }

    #[test]
    fn path_graph_distances() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3)]);
        let out = mfbf_seq(&g, &[0]);
        assert_eq!(tau(&out, 0, 1), Some((1, 1.0)));
        assert_eq!(tau(&out, 0, 2), Some((2, 1.0)));
        assert_eq!(tau(&out, 0, 3), Some((3, 1.0)));
        assert_eq!(
            tau(&out, 0, 0),
            Some((0, 1.0)),
            "diagonal is the trivial path"
        );
    }

    #[test]
    fn diamond_multiplicities() {
        let g = Graph::unweighted(4, true, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let out = mfbf_seq(&g, &[0]);
        assert_eq!(tau(&out, 0, 3), Some((2, 2.0)));
    }

    #[test]
    fn weighted_distances_and_ties() {
        // 0→3: direct w=4 (one edge) vs 0→1→2→3 w=1+1+2=4 → σ̄ = 2.
        let g = Graph::new(
            4,
            true,
            vec![
                (0, 3, Dist::new(4)),
                (0, 1, Dist::new(1)),
                (1, 2, Dist::new(1)),
                (2, 3, Dist::new(2)),
            ],
        );
        let out = mfbf_seq(&g, &[0]);
        assert_eq!(tau(&out, 0, 3), Some((4, 2.0)));
        assert_eq!(tau(&out, 0, 2), Some((2, 1.0)));
    }

    #[test]
    fn weighted_correction_rounds() {
        // A long direct edge first sets τ(0,2)=10, later corrected to
        // 5 via the two-hop route — the weighted re-frontier case.
        let g = Graph::new(
            3,
            true,
            vec![
                (0, 2, Dist::new(10)),
                (0, 1, Dist::new(2)),
                (1, 2, Dist::new(3)),
            ],
        );
        let out = mfbf_seq(&g, &[0]);
        assert_eq!(tau(&out, 0, 2), Some((5, 1.0)));
        assert!(out.iterations >= 1);
    }

    #[test]
    fn cycle_back_to_source() {
        // Triangle: a finite cycle back to the source must not create
        // a diagonal entry (σ̄(s,s) stays implicit).
        let g = Graph::unweighted(3, true, vec![(0, 1), (1, 2), (2, 0)]);
        let out = mfbf_seq(&g, &[0]);
        assert_eq!(
            tau(&out, 0, 0),
            Some((0, 1.0)),
            "cycle must not overwrite τ(s,s)=0"
        );
        assert_eq!(tau(&out, 0, 2), Some((2, 1.0)));
    }

    #[test]
    fn multiple_sources_batch() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3)]);
        let out = mfbf_seq(&g, &[0, 3, 2]);
        assert_eq!(tau(&out, 0, 3), Some((3, 1.0)));
        assert_eq!(tau(&out, 1, 0), Some((3, 1.0))); // row 1 = source 3
        assert_eq!(tau(&out, 2, 0), Some((2, 1.0))); // row 2 = source 2
    }

    #[test]
    fn unreachable_stays_absent() {
        let g = Graph::unweighted(4, true, vec![(0, 1), (2, 3)]);
        let out = mfbf_seq(&g, &[0]);
        assert_eq!(out.t.get(0, 2), None);
        assert_eq!(out.t.get(0, 3), None);
    }

    #[test]
    fn empty_batch() {
        let g = Graph::unweighted(3, false, vec![(0, 1)]);
        let out = mfbf_seq(&g, &[]);
        assert_eq!(out.t.nrows(), 0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn frontier_volume_bounded_unweighted() {
        // Unweighted: each vertex appears in exactly one frontier per
        // source (§5.3) — so Σ nnz(Fᵢ) ≤ n·n_b.
        let g = Graph::unweighted(8, false, (0..7).map(|i| (i, i + 1)));
        let out = mfbf_seq(&g, &[0, 4]);
        assert!(
            out.frontier_nnz <= (8 * 2) as u64,
            "got {}",
            out.frontier_nnz
        );
    }
}
