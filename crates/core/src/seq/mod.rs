//! Sequential (single address space) MFBC: the paper's Algorithms
//! 1–3 executed directly on CSR matrices with the generalized-SpGEMM
//! kernels. This is both the `p = 1` reference the distributed driver
//! is tested against and a usable shared-memory BC implementation in
//! its own right (the local SpGEMM runs on the `mfbc-parallel` pool).

pub mod mfbc;
pub mod mfbf;
pub mod mfbr;

pub use mfbc::{mfbc_seq, MfbcSeqStats};
pub use mfbf::{mfbf_seq, MfbfOut};
pub use mfbr::mfbr_seq;

use mfbc_algebra::{Centpath, Multpath};

/// The frontier-update rule of Algorithm 1, line 6, applied per
/// explored entry: the freshly-explored multpath `g` stays in the
/// next frontier iff it carries paths and its weight survived the
/// accumulation `T := T ⊕ G` (i.e. matches the updated table entry
/// `t_new`).
#[inline]
pub fn mfbf_keep_in_frontier(g: &Multpath, t_new: Option<&Multpath>) -> Option<Multpath> {
    match t_new {
        Some(t) if g.is_path() && g.w == t.w => Some(*g),
        _ => None,
    }
}

/// The dependency-counter anchor of Algorithm 2: given the
/// child-count accumulation `d` for a vertex whose shortest-path
/// weight is `tau_w`, the initial centpath is `(τ, 0, #children)` —
/// contributions of other weights are discarded (they come from
/// non-shortest-path edges).
#[inline]
pub fn mfbr_anchor(tau: &Multpath, d: Option<&Centpath>) -> Centpath {
    let deps = match d {
        Some(c) if c.w == tau.w => c.c,
        _ => 0,
    };
    Centpath::new(tau.w, 0.0, deps)
}

/// The frontier-emission rule of Algorithm 2, lines 3/9–10: a vertex
/// whose counter reached zero fires once, carrying
/// `p = ζ(s,v) + 1/σ̄(s,v)`; its table entry is pinned to `c = −1`.
#[inline]
pub fn mfbr_fire(z: &Centpath, sigma: f64) -> Option<Centpath> {
    if z.c == 0 {
        Some(Centpath::new(z.w, z.p + 1.0 / sigma, -1))
    } else {
        None
    }
}
