//! MFBC — the combined batched algorithm (Algorithm 3), sequential.

use crate::scores::BcScores;
use crate::seq::mfbf::mfbf_seq;
use crate::seq::mfbr::mfbr_seq;
use mfbc_graph::Graph;

/// Aggregate statistics of a sequential MFBC run.
#[derive(Clone, Debug, Default)]
pub struct MfbcSeqStats {
    /// Number of source batches processed (`n / n_b`).
    pub batches: usize,
    /// Total forward (MFBF) iterations across batches.
    pub forward_iterations: usize,
    /// Total backward (MFBr) iterations across batches.
    pub backward_iterations: usize,
    /// Total elementary operations (relaxations + back-propagations).
    pub ops: u64,
    /// `Σ nnz(Fᵢ)` over all forward frontiers.
    pub frontier_nnz: u64,
}

/// Runs Algorithm 3 with batch size `nb`: `λ(v) = Σ_s ζ(s,v)·σ̄(s,v)`
/// accumulated over `⌈n/n_b⌉` batches (the paper pads to `n mod n_b =
/// 0` with disconnected vertices; a short final batch is equivalent).
///
/// # Panics
/// Panics if `nb == 0` and the graph is non-empty.
pub fn mfbc_seq(g: &Graph, nb: usize) -> (BcScores, MfbcSeqStats) {
    let n = g.n();
    let mut scores = BcScores::zeros(n);
    let mut stats = MfbcSeqStats::default();
    if n == 0 {
        return (scores, stats);
    }
    assert!(nb > 0, "batch size must be positive");

    let sources: Vec<usize> = (0..n).collect();
    for chunk in sources.chunks(nb) {
        let fwd = mfbf_seq(g, chunk);
        let back = mfbr_seq(g, &fwd.t);
        stats.batches += 1;
        stats.forward_iterations += fwd.iterations;
        stats.backward_iterations += back.iterations;
        stats.ops += fwd.ops + back.ops;
        stats.frontier_nnz += fwd.frontier_nnz;

        // Line 5: λ(v) += Σ_s Z(s,v).p · T(s,v).m, skipping the
        // diagonal (δ(s,s) is excluded by the definition of σ(s,t,v)).
        for (s, v, z) in back.z.iter() {
            if v == chunk[s] {
                continue;
            }
            let sigma = fwd.t.get(s, v).expect("Z pattern ⊆ T pattern").m;
            scores.lambda[v] += z.p * sigma;
        }
    }
    (scores, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{brandes_unweighted, brandes_weighted, bruteforce_bc};
    use mfbc_algebra::Dist;

    fn assert_matches_oracle(g: &Graph, nb: usize) {
        let (got, _) = mfbc_seq(g, nb);
        let want = if g.is_unit_weighted() {
            brandes_unweighted(g)
        } else {
            brandes_weighted(g)
        };
        assert!(
            got.approx_eq(&want, 1e-9),
            "nb={nb}: {:?} vs {:?}",
            got.lambda,
            want.lambda
        );
    }

    #[test]
    fn matches_brandes_on_small_graphs() {
        let graphs = vec![
            Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3)]),
            Graph::unweighted(4, true, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
            Graph::unweighted(5, false, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            Graph::unweighted(6, false, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]),
        ];
        for g in &graphs {
            for nb in [1, 2, g.n()] {
                assert_matches_oracle(g, nb);
            }
        }
    }

    #[test]
    fn matches_weighted_brandes() {
        let g = Graph::new(
            5,
            true,
            vec![
                (0, 1, Dist::new(2)),
                (1, 2, Dist::new(2)),
                (0, 2, Dist::new(4)),
                (2, 3, Dist::new(1)),
                (3, 4, Dist::new(1)),
                (2, 4, Dist::new(2)),
                (4, 0, Dist::new(3)),
            ],
        );
        for nb in [1, 3, 5] {
            assert_matches_oracle(&g, nb);
        }
    }

    #[test]
    fn matches_bruteforce_with_cycles_and_ties() {
        let g = Graph::new(
            6,
            false,
            vec![
                (0, 1, Dist::new(1)),
                (1, 2, Dist::new(1)),
                (2, 3, Dist::new(1)),
                (3, 0, Dist::new(1)),
                (2, 4, Dist::new(2)),
                (4, 5, Dist::new(1)),
                (3, 5, Dist::new(3)),
            ],
        );
        let (got, _) = mfbc_seq(&g, 2);
        let want = bruteforce_bc(&g);
        assert!(
            got.approx_eq(&want, 1e-9),
            "{:?} vs {:?}",
            got.lambda,
            want.lambda
        );
    }

    #[test]
    fn batching_invariance() {
        let g = Graph::unweighted(
            7,
            false,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 0),
                (1, 5),
            ],
        );
        let (full, s_full) = mfbc_seq(&g, 7);
        assert_eq!(s_full.batches, 1);
        for nb in [1, 2, 3, 4] {
            let (batched, st) = mfbc_seq(&g, nb);
            assert_eq!(st.batches, g.n().div_ceil(nb));
            assert!(
                batched.approx_eq(&full, 1e-9),
                "nb={nb}: {:?} vs {:?}",
                batched.lambda,
                full.lambda
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::unweighted(0, false, Vec::<(usize, usize)>::new());
        let (s, st) = mfbc_seq(&g, 4);
        assert_eq!(s.n(), 0);
        assert_eq!(st.batches, 0);
    }

    #[test]
    fn isolated_vertices_score_zero() {
        let g = Graph::unweighted(5, false, vec![(0, 1), (1, 2)]);
        let (s, _) = mfbc_seq(&g, 5);
        assert_eq!(s.lambda[3], 0.0);
        assert_eq!(s.lambda[4], 0.0);
        assert_eq!(s.lambda[1], 2.0);
    }
}
