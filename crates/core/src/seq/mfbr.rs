//! MFBr — Maximal Frontier Brandes (Algorithm 2), sequential.
//!
//! Given the multpath table `T` from MFBF, back-propagates partial
//! centrality *factors* `ζ(s,v) = δ(s,v)/σ̄(s,v)` from the leaves of
//! each shortest-path tree toward the root. Each table entry keeps a
//! counter of shortest-path children that have not yet reported;
//! a vertex joins the backward frontier exactly when its counter
//! hits zero, then is pinned to −1 so it fires once (the paper's
//! optimal-progress property).
//!
//! Back-propagated contributions are merged with the *anchored* `⊗`:
//! an update only lands on positions already present in `Z` (pairs
//! with a finite shortest path). Contributions to other positions —
//! possible when an edge leads to a vertex unreachable from the
//! batch's sources — are inert by the paper's `(∞,0,0)` semantics and
//! are dropped rather than stored.

use crate::seq::{mfbr_anchor, mfbr_fire};
use mfbc_algebra::kernel::BrandesKernel;
use mfbc_algebra::{Centpath, CentpathMonoid, Multpath};
use mfbc_graph::Graph;
use mfbc_sparse::elementwise::combine_anchored;
use mfbc_sparse::{spgemm, Csr};

/// Result of a sequential MFBr run.
#[derive(Clone, Debug)]
pub struct MfbrOut {
    /// `Z(s,v).p = ζ(s,v)` on the sparsity pattern of `T`.
    pub z: Csr<Centpath>,
    /// Backward-sweep iterations.
    pub iterations: usize,
    /// `Σᵢ nnz(Fᵢ)` over backward frontiers.
    pub frontier_nnz: u64,
    /// Total elementary back-propagations (`ops`).
    pub ops: u64,
}

/// Runs Algorithm 2: `Z = MFBr(A, T)`.
pub fn mfbr_seq(g: &Graph, t: &Csr<Multpath>) -> MfbrOut {
    let at = g.adjacency_t();
    let mut ops = 0u64;

    // Lines 1–2: count each vertex's shortest-path children by one
    // generalized product of per-entry (τ, 0, 1) seeds with Aᵀ.
    let seeds = t.map(|_, _, mp| Centpath::new(mp.w, 0.0, 1));
    let counted = spgemm::<BrandesKernel>(&seeds, &at);
    ops += counted.ops;
    let mut z = t.map(|s, v, mp| mfbr_anchor(mp, counted.mat.get(s, v)));

    // Lines 3–4: leaves (counter 0) form the first frontier.
    let mut frontier = fire_and_pin(&mut z, t);
    let mut iterations = 0usize;
    let mut frontier_nnz = frontier.nnz() as u64;

    // Lines 5–12.
    while !frontier.is_empty() {
        iterations += 1;
        // Line 6: back-propagate the frontier of centralities.
        let back = spgemm::<BrandesKernel>(&frontier, &at);
        ops += back.ops;
        // Line 8: accumulate centralities and decrement counters
        // (frontier entries carry c = −1 each).
        z = combine_anchored::<CentpathMonoid, _>(&z, &back.mat);
        // Lines 9–11: vertices whose counter reached zero fire.
        frontier = fire_and_pin(&mut z, t);
        frontier_nnz += frontier.nnz() as u64;
    }

    MfbrOut {
        z,
        iterations,
        frontier_nnz,
        ops,
    }
}

/// Extracts the next frontier (entries with counter 0, carrying
/// `ζ + 1/σ̄`) and pins those entries to −1 in `Z`.
fn fire_and_pin(z: &mut Csr<Centpath>, t: &Csr<Multpath>) -> Csr<Centpath> {
    let frontier = z.filter(|s, v, zv| {
        let _ = (s, v);
        zv.c == 0
    });
    if frontier.is_empty() {
        return frontier;
    }
    let fired = frontier.map(|s, v, zv| {
        let sigma = t.get(s, v).expect("Z pattern is a subset of T's").m;
        mfbr_fire(zv, sigma).expect("filtered to c == 0")
    });
    *z = z.map(|_, _, zv| {
        if zv.c == 0 {
            Centpath::new(zv.w, zv.p, -1)
        } else {
            *zv
        }
    });
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::mfbf::mfbf_seq;
    use mfbc_algebra::Dist;
    use mfbc_graph::Graph;

    fn zeta(g: &Graph, src: usize) -> (Csr<Multpath>, Csr<Centpath>) {
        let t = mfbf_seq(g, &[src]).t;
        let z = mfbr_seq(g, &t).z;
        (t, z)
    }

    #[test]
    fn path_graph_factors() {
        // 0-1-2-3 from source 0: ζ(0,v) = δ(0,v)/σ̄ with σ̄ = 1:
        // δ(0,1)=2 (vertices 2,3 beyond... δ counts Σ_t σ(0,t,1)/σ̄ =
        // paths to 2 and 3) → ζ(0,1)=2; ζ(0,2)=1; ζ(0,3)=0.
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3)]);
        let (_, z) = zeta(&g, 0);
        assert_eq!(z.get(0, 1).unwrap().p, 2.0);
        assert_eq!(z.get(0, 2).unwrap().p, 1.0);
        assert_eq!(z.get(0, 3).unwrap().p, 0.0);
    }

    #[test]
    fn diamond_factors() {
        // 0→{1,2}→3: σ̄(0,3)=2; δ(0,1)=δ(0,2)=1/2; ζ = δ/σ̄ = 1/2.
        let g = Graph::unweighted(4, true, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (t, z) = zeta(&g, 0);
        assert_eq!(t.get(0, 3).unwrap().m, 2.0);
        assert_eq!(z.get(0, 1).unwrap().p, 0.5);
        assert_eq!(z.get(0, 2).unwrap().p, 0.5);
        assert_eq!(z.get(0, 3).unwrap().p, 0.0);
    }

    #[test]
    fn counters_are_pinned_after_firing() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3)]);
        let (_, z) = zeta(&g, 0);
        for (_, _, c) in z.iter() {
            assert_eq!(c.c, -1, "every reachable vertex fires exactly once");
        }
    }

    #[test]
    fn weighted_unequal_hops() {
        // Two equal-weight 0→3 routes with different hop counts: the
        // counter mechanism must wait for the longer route's leaf.
        let g = Graph::new(
            4,
            true,
            vec![
                (0, 3, Dist::new(4)),
                (0, 1, Dist::new(1)),
                (1, 2, Dist::new(1)),
                (2, 3, Dist::new(2)),
            ],
        );
        let (t, z) = zeta(&g, 0);
        assert_eq!(t.get(0, 3).unwrap().m, 2.0);
        // δ(0,1) = 1 (for t=2) + 1/2 (half of the two (0,3) paths);
        // ζ(0,1) = δ/σ̄(0,1) = 1.5. δ(0,2) = 1/2 likewise.
        assert_eq!(z.get(0, 1).unwrap().p, 1.5);
        assert_eq!(z.get(0, 2).unwrap().p, 0.5);
    }

    #[test]
    fn edge_into_unreachable_region_is_inert() {
        // 2→1 exists but 2 is unreachable from 0; back-propagation
        // along (1,2) must not materialize state for (0,2).
        let g = Graph::unweighted(3, true, vec![(0, 1), (2, 1)]);
        let (_, z) = zeta(&g, 0);
        assert_eq!(z.get(0, 2), None);
        assert_eq!(z.get(0, 1).unwrap().p, 0.0);
        // The source's own factor accumulates its child's report but
        // is excluded from λ by Algorithm 3.
        assert!(z.get(0, 0).is_some());
    }

    #[test]
    fn iteration_count_matches_tree_depth() {
        let g = Graph::unweighted(5, false, (0..4).map(|i| (i, i + 1)));
        let t = mfbf_seq(&g, &[0]).t;
        let out = mfbr_seq(&g, &t);
        // Path of 4 edges: leaves fire, then 3 more propagation
        // rounds reach the root's child.
        assert!(out.iterations <= 5, "iterations = {}", out.iterations);
        assert!(
            out.frontier_nnz <= 5,
            "each vertex (incl. the source) fires once"
        );
    }
}
