//! Betweenness-centrality score vectors and comparison helpers.

/// Betweenness centrality scores `λ(v)` for every vertex, counting
/// ordered `(s, t)` pairs (the paper's definition
/// `λ(v) = Σ_{s,t∈V} σ(s,t,v)/σ̄(s,t)`; for undirected graphs this is
/// twice the unordered-pair convention, consistently across every
/// algorithm in this workspace).
#[derive(Clone, Debug, PartialEq)]
pub struct BcScores {
    /// `λ(v)` indexed by vertex.
    pub lambda: Vec<f64>,
}

impl BcScores {
    /// All-zero scores for `n` vertices.
    pub fn zeros(n: usize) -> BcScores {
        BcScores {
            lambda: vec![0.0; n],
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.lambda.len()
    }

    /// Adds another score vector elementwise (batch accumulation).
    pub fn accumulate(&mut self, other: &BcScores) {
        assert_eq!(self.n(), other.n(), "score length mismatch");
        for (a, b) in self.lambda.iter_mut().zip(&other.lambda) {
            *a += b;
        }
    }

    /// Maximum absolute difference against another score vector.
    pub fn max_abs_diff(&self, other: &BcScores) -> f64 {
        assert_eq!(self.n(), other.n(), "score length mismatch");
        self.lambda
            .iter()
            .zip(&other.lambda)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether two score vectors agree within `tol` per entry,
    /// relative to the larger magnitude (floating-point accumulation
    /// order differs between algorithms).
    pub fn approx_eq(&self, other: &BcScores, tol: f64) -> bool {
        self.lambda.iter().zip(&other.lambda).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }

    /// Normalized scores: divides by `(n−1)(n−2)`, the number of
    /// ordered pairs a vertex could possibly lie between, mapping
    /// `λ` into `[0, 1]` (the standard normalization for comparing
    /// centralities across graphs of different sizes). Graphs with
    /// `n < 3` normalize to all-zero.
    pub fn normalized(&self) -> BcScores {
        let n = self.n() as f64;
        let denom = (n - 1.0) * (n - 2.0);
        if denom <= 0.0 {
            return BcScores::zeros(self.n());
        }
        BcScores {
            lambda: self.lambda.iter().map(|x| x / denom).collect(),
        }
    }

    /// The `k` highest-centrality vertices, ties broken by index
    /// (what BC applications actually consume).
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        let mut idx: Vec<usize> = (0..self.n()).collect();
        idx.sort_by(|&a, &b| {
            self.lambda[b]
                .partial_cmp(&self.lambda[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .take(k)
            .map(|v| (v, self.lambda[v]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_diff() {
        let mut a = BcScores {
            lambda: vec![1.0, 2.0],
        };
        let b = BcScores {
            lambda: vec![0.5, 0.5],
        };
        a.accumulate(&b);
        assert_eq!(a.lambda, vec![1.5, 2.5]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn approx_eq_tolerates_roundoff() {
        let a = BcScores {
            lambda: vec![100.0, 0.0],
        };
        let b = BcScores {
            lambda: vec![100.0 + 1e-10, 1e-12],
        };
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(
            &BcScores {
                lambda: vec![101.0, 0.0]
            },
            1e-9
        ));
    }

    #[test]
    fn normalization_bounds() {
        // Star with 4 leaves: hub lies on all 4·3 = 12 ordered pairs,
        // the theoretical maximum → normalized hub score = 1.
        let s = BcScores {
            lambda: vec![12.0, 0.0, 0.0, 0.0, 0.0],
        };
        let norm = s.normalized();
        assert!((norm.lambda[0] - 1.0).abs() < 1e-12);
        assert_eq!(norm.lambda[1], 0.0);
        // Degenerate sizes.
        assert_eq!(BcScores::zeros(2).normalized().lambda, vec![0.0, 0.0]);
        assert_eq!(BcScores::zeros(0).normalized().n(), 0);
    }

    #[test]
    fn top_k_orders_by_score() {
        let s = BcScores {
            lambda: vec![1.0, 5.0, 3.0, 5.0],
        };
        let top = s.top_k(3);
        assert_eq!(top[0].0, 1); // tie with 3, lower index first
        assert_eq!(top[1].0, 3);
        assert_eq!(top[2].0, 2);
    }
}
