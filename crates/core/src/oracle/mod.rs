//! Reference oracles for betweenness centrality, independent of the
//! algebraic machinery: textbook Brandes (unweighted BFS and weighted
//! Dijkstra variants) and a brute-force path enumerator for tiny
//! graphs. The MFBC correctness spine (DESIGN.md §2) tests every
//! production algorithm against these.

pub mod brandes;
pub mod brandes_w;
pub mod bruteforce;

pub use brandes::brandes_unweighted;
pub use brandes_w::brandes_weighted;
pub use bruteforce::bruteforce_bc;
