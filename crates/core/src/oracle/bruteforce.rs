//! Brute-force betweenness centrality by explicit shortest-path
//! enumeration — an algorithm-independent oracle for tiny graphs.
//!
//! Distances come from Floyd–Warshall; `σ̄(s,t)` and `σ(s,t,v)` are
//! counted by depth-first enumeration of every shortest path. Cost is
//! exponential in the path multiplicity, so keep `n ≲ 12`.

#![allow(clippy::needless_range_loop)]

use crate::scores::BcScores;
use mfbc_algebra::Dist;
use mfbc_graph::Graph;

/// Exact `λ(v) = Σ_{s,t} σ(s,t,v)/σ̄(s,t)` by path enumeration.
pub fn bruteforce_bc(g: &Graph) -> BcScores {
    let n = g.n();
    // Floyd–Warshall distances.
    let mut dist = vec![vec![Dist::INF; n]; n];
    for v in 0..n {
        dist[v][v] = Dist::ZERO;
    }
    for (i, j, w) in g.adjacency().iter() {
        dist[i][j] = dist[i][j].min(*w);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = dist[i][k] + dist[k][j];
                if via < dist[i][j] {
                    dist[i][j] = via;
                }
            }
        }
    }

    let mut scores = BcScores::zeros(n);
    for s in 0..n {
        for t in 0..n {
            if s == t || !dist[s][t].is_finite() {
                continue;
            }
            // Enumerate shortest s→t paths, counting per-vertex
            // pass-throughs.
            let mut through = vec![0u64; n];
            let mut total = 0u64;
            let mut stack: Vec<usize> = vec![s];
            enumerate(g, &dist, s, t, &mut stack, &mut through, &mut total);
            assert!(total > 0, "distance finite but no path found");
            for v in 0..n {
                if v != s && v != t && through[v] > 0 {
                    scores.lambda[v] += through[v] as f64 / total as f64;
                }
            }
        }
    }
    scores
}

fn enumerate(
    g: &Graph,
    dist: &[Vec<Dist>],
    cur: usize,
    t: usize,
    stack: &mut Vec<usize>,
    through: &mut [u64],
    total: &mut u64,
) {
    if cur == t {
        *total += 1;
        for &v in stack.iter() {
            through[v] += 1;
        }
        return;
    }
    for (u, w) in g.neighbors(cur) {
        // Edge (cur,u) lies on a shortest path to t iff it preserves
        // the distance identity.
        if dist[stack[0]][cur] + w + dist[u][t] == dist[stack[0]][t] {
            stack.push(u);
            enumerate(g, dist, u, t, stack, through, total);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{brandes_unweighted, brandes_weighted};

    #[test]
    fn matches_brandes_on_path() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3)]);
        let bf = bruteforce_bc(&g);
        let br = brandes_unweighted(&g);
        assert!(
            bf.approx_eq(&br, 1e-12),
            "{:?} vs {:?}",
            bf.lambda,
            br.lambda
        );
    }

    #[test]
    fn matches_brandes_on_k4() {
        let g = Graph::unweighted(
            4,
            false,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        );
        let bf = bruteforce_bc(&g);
        let br = brandes_unweighted(&g);
        assert!(bf.approx_eq(&br, 1e-12));
    }

    #[test]
    fn matches_weighted_brandes() {
        let g = Graph::new(
            5,
            true,
            vec![
                (0, 1, Dist::new(2)),
                (1, 2, Dist::new(2)),
                (0, 2, Dist::new(4)),
                (2, 3, Dist::new(1)),
                (3, 4, Dist::new(1)),
                (2, 4, Dist::new(2)),
            ],
        );
        let bf = bruteforce_bc(&g);
        let bw = brandes_weighted(&g);
        assert!(
            bf.approx_eq(&bw, 1e-12),
            "{:?} vs {:?}",
            bf.lambda,
            bw.lambda
        );
    }

    #[test]
    fn tied_paths_split_credit() {
        let g = Graph::unweighted(4, true, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let bf = bruteforce_bc(&g);
        assert!((bf.lambda[1] - 0.5).abs() < 1e-12);
        assert!((bf.lambda[2] - 0.5).abs() < 1e-12);
    }
}
