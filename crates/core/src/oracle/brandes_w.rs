//! Sequential Brandes' algorithm for weighted graphs (Dijkstra-based
//! forward phase, Brandes 2001 §4) — the weighted correctness oracle.

use crate::scores::BcScores;
use mfbc_algebra::Dist;
use mfbc_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes exact betweenness centrality on a positively-weighted
/// graph via one Dijkstra + one decreasing-distance dependency sweep
/// per source.
pub fn brandes_weighted(g: &Graph) -> BcScores {
    let n = g.n();
    let mut scores = BcScores::zeros(n);
    let mut sigma = vec![0.0f64; n];
    let mut dist: Vec<Dist> = vec![Dist::INF; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut settled: Vec<usize> = Vec::with_capacity(n);
    let mut done = vec![false; n];

    for s in 0..n {
        sigma.fill(0.0);
        dist.fill(Dist::INF);
        delta.fill(0.0);
        done.fill(false);
        for p in &mut preds {
            p.clear();
        }
        settled.clear();

        sigma[s] = 1.0;
        dist[s] = Dist::ZERO;
        let mut heap: BinaryHeap<Reverse<(Dist, usize)>> = BinaryHeap::new();
        heap.push(Reverse((Dist::ZERO, s)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if done[v] || d > dist[v] {
                continue;
            }
            done[v] = true;
            settled.push(v);
            for (u, w) in g.neighbors(v) {
                let cand = d + w;
                if cand < dist[u] {
                    dist[u] = cand;
                    sigma[u] = sigma[v];
                    preds[u].clear();
                    preds[u].push(v);
                    heap.push(Reverse((cand, u)));
                } else if cand == dist[u] && !done[u] {
                    sigma[u] += sigma[v];
                    preds[u].push(v);
                }
            }
        }
        // Dependency accumulation in decreasing-distance order.
        for &w in settled.iter().rev() {
            let coeff = (1.0 + delta[w]) / sigma[w];
            for &v in &preds[w] {
                delta[v] += sigma[v] * coeff;
            }
            if w != s {
                scores.lambda[w] += delta[w];
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brandes::brandes_unweighted;

    #[test]
    fn matches_unweighted_on_unit_graph() {
        let g = Graph::unweighted(
            6,
            false,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
        );
        let a = brandes_unweighted(&g);
        let b = brandes_weighted(&g);
        assert!(a.approx_eq(&b, 1e-12), "{:?} vs {:?}", a.lambda, b.lambda);
    }

    /// Weighted diamond: 0→1→3 costs 2, 0→2→3 costs 3 — only vertex 1
    /// is on the shortest path.
    #[test]
    fn weights_break_ties() {
        let g = Graph::new(
            4,
            true,
            vec![
                (0, 1, Dist::new(1)),
                (0, 2, Dist::new(1)),
                (1, 3, Dist::new(1)),
                (2, 3, Dist::new(2)),
            ],
        );
        let s = brandes_weighted(&g);
        assert_eq!(s.lambda[1], 1.0);
        assert_eq!(s.lambda[2], 0.0);
    }

    /// Weighted tie: both routes cost 2 → each middle vertex ½.
    #[test]
    fn weighted_tie_splits_multiplicity() {
        let g = Graph::new(
            4,
            true,
            vec![
                (0, 1, Dist::new(1)),
                (0, 2, Dist::new(1)),
                (1, 3, Dist::new(1)),
                (2, 3, Dist::new(1)),
            ],
        );
        let s = brandes_weighted(&g);
        assert!((s.lambda[1] - 0.5).abs() < 1e-12);
        assert!((s.lambda[2] - 0.5).abs() < 1e-12);
    }

    /// A heavy direct edge loses to a lighter two-hop route, putting
    /// the middle vertex on the path.
    #[test]
    fn shortcut_vs_detour() {
        let g = Graph::new(
            3,
            false,
            vec![
                (0, 2, Dist::new(10)),
                (0, 1, Dist::new(2)),
                (1, 2, Dist::new(3)),
            ],
        );
        let s = brandes_weighted(&g);
        assert_eq!(s.lambda[1], 2.0); // both directions
    }

    /// Multi-edge-count shortest paths in a weighted graph: paths
    /// with different hop counts but equal weight must both count —
    /// the case BFS-based algorithms cannot handle.
    #[test]
    fn equal_weight_different_hop_counts() {
        // 0→3 direct weight 2; 0→1→2→3 weights 1,0.5,0.5 … integral
        // weights: direct (0,3) w=4; hop route 0→1→2→3 w=1+1+2=4.
        let g = Graph::new(
            4,
            true,
            vec![
                (0, 3, Dist::new(4)),
                (0, 1, Dist::new(1)),
                (1, 2, Dist::new(1)),
                (2, 3, Dist::new(2)),
            ],
        );
        let s = brandes_weighted(&g);
        // σ̄(0,3) = 2. Vertex 1: on 0→1→2 (1) plus half the (0,3)
        // pairs (0.5). Vertex 2: on 1→2→3 (1) plus half of (0,3).
        assert!((s.lambda[1] - 1.5).abs() < 1e-12, "λ(1)={}", s.lambda[1]);
        assert!((s.lambda[2] - 1.5).abs() < 1e-12, "λ(2)={}", s.lambda[2]);
    }
}
