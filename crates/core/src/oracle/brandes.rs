//! Sequential Brandes' algorithm for unweighted graphs (Brandes
//! 2001) — the primary correctness oracle.

use crate::scores::BcScores;
use mfbc_graph::Graph;
use std::collections::VecDeque;

/// Computes exact betweenness centrality by one BFS + one backward
/// dependency sweep per source.
pub fn brandes_unweighted(g: &Graph) -> BcScores {
    assert!(
        g.is_unit_weighted(),
        "brandes_unweighted requires unit weights; use brandes_weighted"
    );
    let n = g.n();
    let mut scores = BcScores::zeros(n);
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![usize::MAX; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    for s in 0..n {
        sigma.fill(0.0);
        dist.fill(usize::MAX);
        delta.fill(0.0);
        for p in &mut preds {
            p.clear();
        }
        order.clear();

        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for (u, _) in g.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
                if dist[u] == dist[v] + 1 {
                    sigma[u] += sigma[v];
                    preds[u].push(v);
                }
            }
        }
        // Backward sweep in reverse BFS order.
        for &w in order.iter().rev() {
            let coeff = (1.0 + delta[w]) / sigma[w];
            for &v in &preds[w] {
                delta[v] += sigma[v] * coeff;
            }
            if w != s {
                scores.lambda[w] += delta[w];
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2: vertex 1 lies on the (0,2) and (2,0) paths.
    #[test]
    fn path_graph() {
        let g = Graph::unweighted(3, false, vec![(0, 1), (1, 2)]);
        let s = brandes_unweighted(&g);
        assert_eq!(s.lambda, vec![0.0, 2.0, 0.0]);
    }

    /// Star: the hub lies on all (leaf, leaf) ordered pairs.
    #[test]
    fn star_graph() {
        let g = Graph::unweighted(5, false, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = brandes_unweighted(&g);
        assert_eq!(s.lambda[0], 12.0); // 4·3 ordered leaf pairs
        for v in 1..5 {
            assert_eq!(s.lambda[v], 0.0);
        }
    }

    /// Cycle of 4: every vertex carries half of the opposite pair's
    /// two tied shortest paths, in both directions.
    #[test]
    fn cycle_graph() {
        let g = Graph::unweighted(4, false, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = brandes_unweighted(&g);
        for v in 0..4 {
            assert!(
                (s.lambda[v] - 1.0).abs() < 1e-12,
                "λ({v}) = {}",
                s.lambda[v]
            );
        }
    }

    /// Diamond 0→{1,2}→3 (directed): two tied paths; each middle
    /// vertex gets 1/2.
    #[test]
    fn directed_diamond() {
        let g = Graph::unweighted(4, true, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let s = brandes_unweighted(&g);
        assert!((s.lambda[1] - 0.5).abs() < 1e-12);
        assert!((s.lambda[2] - 0.5).abs() < 1e-12);
        assert_eq!(s.lambda[0], 0.0);
        assert_eq!(s.lambda[3], 0.0);
    }

    #[test]
    fn disconnected_components() {
        let g = Graph::unweighted(6, false, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        let s = brandes_unweighted(&g);
        assert_eq!(s.lambda, vec![0.0, 2.0, 0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::unweighted(3, false, Vec::<(usize, usize)>::new());
        let s = brandes_unweighted(&g);
        assert_eq!(s.lambda, vec![0.0; 3]);
    }
}
