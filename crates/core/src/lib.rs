//! MFBC — Maximal Frontier Betweenness Centrality.
//!
//! The paper's primary contribution (Solomonik, Besta, Vella,
//! Hoefler — SC'17): betweenness centrality via
//! communication-efficient generalized sparse matrix multiplication
//! over the multpath and centpath monoids.
//!
//! * [`seq`] — Algorithms 1–3 on CSR matrices (shared-memory
//!   reference, `mfbc-parallel` pooled kernels);
//! * [`dist`] — the distributed drivers over the simulated machine:
//!   autotuned **CTF-MFBC** and fixed-grid **CA-MFBC** (§6);
//! * [`combblas`] — the CombBLAS-style comparison baseline: batched
//!   BFS-Brandes on a square 2D grid, unweighted only (§7);
//! * [`approx`] — unbiased sampled-source approximation (the Bader
//!   et al. estimator the paper's intro cites);
//! * [`bfs`] — algebraic BFS/SSSP over the tropical semiring (§2.3's
//!   introductory primitive, batched and distributed);
//! * [`apsp`] — path-doubling all-pairs shortest paths, the §5.3.2
//!   memory-hungry comparator;
//! * [`cc`] — connected components by min-label propagation (the
//!   extensibility claim of §8, worked);
//! * [`oracle`] — textbook Brandes (BFS + Dijkstra) and brute-force
//!   path enumeration, the correctness spine;
//! * [`scores`] — score vectors and comparisons.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod approx;
pub mod apsp;
pub mod bfs;
pub mod cc;
pub mod combblas;
pub mod dist;
pub mod oracle;
pub mod scores;
pub mod seq;

pub use approx::{approx_from_sources, mfbc_approx, sample_rel_se, sample_sources};
pub use dist::{mfbc_dist, MfbcConfig, MfbcRun, MfbcSession, PlanMode, SessionStep};
pub use scores::BcScores;
pub use seq::{mfbc_seq, MfbcSeqStats};
