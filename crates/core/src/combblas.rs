//! CombBLAS-style distributed betweenness centrality — the paper's
//! comparison baseline (§7), rebuilt in-repo per DESIGN.md §3.
//!
//! Faithful to the real CombBLAS BC benchmark's constraints:
//!
//! * **unweighted graphs only** (the CombBLAS BC code is BFS-based);
//! * **square 2D processor grids only** ("CombBLAS requires square
//!   processor grids", §7.1) — no 1D/3D variants, no replication, no
//!   layout autotuning;
//! * batched BFS forward sweep that **stores the frontier stack** of
//!   every level for the backward dependency sweep (the memory
//!   footprint that makes the real CombBLAS fail on Friendster);
//! * every SpGEMM runs the SUMMA stationary-C schedule (broadcast
//!   both operands), CombBLAS's algorithm.

use crate::scores::BcScores;
use mfbc_algebra::kernel::CountKernel;
use mfbc_algebra::monoid::SumF64;
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineError};
use mfbc_sparse::{Coo, MaskKind};
use mfbc_tensor::cache::MmCache;
use mfbc_tensor::ops::{dmat_column_sums, dmat_combine, dmat_zip_filter, nnz_sync};
use mfbc_tensor::{canonical_layout, mm_exec_cached_masked, DistMat, MmPlan, Variant1D, Variant2D};

/// Failure modes of the baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum BaselineError {
    /// The graph has non-unit weights (BFS-Brandes cannot run).
    WeightedUnsupported,
    /// `p` is not a perfect square.
    NonSquareGrid(usize),
    /// Simulated machine failure (out of memory).
    Machine(MachineError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::WeightedUnsupported => {
                write!(f, "CombBLAS-style baseline supports unweighted graphs only")
            }
            BaselineError::NonSquareGrid(p) => {
                write!(f, "CombBLAS-style baseline requires a square grid; p={p}")
            }
            BaselineError::Machine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<MachineError> for BaselineError {
    fn from(e: MachineError) -> BaselineError {
        BaselineError::Machine(e)
    }
}

/// Configuration of a baseline run.
#[derive(Clone, Debug, Default)]
pub struct CombBlasConfig {
    /// Sources per batch; `None` chooses `min(n, 512)`.
    pub batch_size: Option<usize>,
    /// Cap on processed batches.
    pub max_batches: Option<usize>,
}

/// Result and statistics of a baseline run.
#[derive(Clone, Debug)]
pub struct CombBlasRun {
    /// Accumulated centrality scores.
    pub scores: BcScores,
    /// Batches processed.
    pub batches: usize,
    /// Sources actually processed.
    pub sources_processed: usize,
    /// BFS levels summed over batches.
    pub levels: usize,
    /// Total kernel applications.
    pub ops: u64,
}

/// Runs the CombBLAS-style batched BFS-Brandes.
pub fn combblas_bc(
    machine: &Machine,
    g: &Graph,
    cfg: &CombBlasConfig,
) -> Result<CombBlasRun, BaselineError> {
    if !g.is_unit_weighted() {
        return Err(BaselineError::WeightedUnsupported);
    }
    let p = machine.p();
    let r = (p as f64).sqrt().round() as usize;
    if r * r != p {
        return Err(BaselineError::NonSquareGrid(p));
    }
    let plan = if p == 1 {
        MmPlan::OneD(Variant1D::A)
    } else {
        MmPlan::TwoD {
            variant: Variant2D::AB,
            p2: r,
            p3: r,
        }
    };

    let n = g.n();
    let nb = cfg.batch_size.unwrap_or_else(|| n.min(512)).max(1);
    let da = DistMat::from_global(canonical_layout(machine, n, n), g.adjacency());
    let dat = DistMat::from_global(canonical_layout(machine, n, n), &g.adjacency_t());
    da.charge_memory(machine)?;
    dat.charge_memory(machine)?;

    let mut run = CombBlasRun {
        scores: BcScores::zeros(n),
        batches: 0,
        sources_processed: 0,
        levels: 0,
        ops: 0,
    };
    let mut fwd_cache: MmCache<mfbc_algebra::Dist> = MmCache::new();
    let mut back_cache: MmCache<mfbc_algebra::Dist> = MmCache::new();

    let sources: Vec<usize> = (0..n).collect();
    let result = (|| -> Result<(), BaselineError> {
        for chunk in sources.chunks(nb) {
            if let Some(max) = cfg.max_batches {
                if run.batches >= max {
                    break;
                }
            }
            batch(
                machine,
                g,
                &da,
                &dat,
                chunk,
                &plan,
                &mut fwd_cache,
                &mut back_cache,
                &mut run,
            )?;
            run.batches += 1;
            run.sources_processed += chunk.len();
        }
        Ok(())
    })();

    fwd_cache.release_all(machine);
    back_cache.release_all(machine);
    da.release_memory(machine);
    dat.release_memory(machine);
    result.map(|()| run)
}

#[allow(clippy::too_many_arguments)]
fn batch(
    machine: &Machine,
    g: &Graph,
    da: &DistMat<mfbc_algebra::Dist>,
    dat: &DistMat<mfbc_algebra::Dist>,
    chunk: &[usize],
    plan: &MmPlan,
    fwd_cache: &mut MmCache<mfbc_algebra::Dist>,
    back_cache: &mut MmCache<mfbc_algebra::Dist>,
    run: &mut CombBlasRun,
) -> Result<(), BaselineError> {
    let n = g.n();
    let nbatch = chunk.len();
    let layout = canonical_layout(machine, nbatch, n);

    // Level 0: each source visits itself with σ = 1.
    let mut seed = Coo::new(nbatch, n);
    for (s, &src) in chunk.iter().enumerate() {
        seed.push(s, src, 1.0f64);
    }
    let f0 = DistMat::from_global(layout.clone(), &seed.into_csr::<SumF64>());

    // Forward BFS, storing the per-level frontier stack (σ values) —
    // the CombBLAS memory profile.
    let mut fronts: Vec<DistMat<f64>> = vec![f0.clone()];
    let mut sigma = f0;
    sigma.charge_memory(machine)?;
    fronts[0].charge_memory(machine)?;

    loop {
        let cur = fronts.last().expect("at least the seed level");
        if nnz_sync(machine, cur)? == 0 {
            if let Some(f) = fronts.pop() {
                f.release_memory(machine)
            }
            break;
        }
        // Unvisited vertices only: the complement of σ's pattern as
        // an output mask prunes already-discovered products inside
        // the multiply instead of filtering them out afterwards.
        let unvisited = crate::dist::pattern_mask_of(MaskKind::Complement, &sigma);
        let explored = mm_exec_cached_masked::<CountKernel>(
            machine,
            plan,
            cur,
            da,
            Some(&unvisited),
            fwd_cache,
        )?;
        run.ops += explored.ops;
        let next = explored.c;
        let sigma_new = dmat_combine::<SumF64, _>(machine, &sigma, &next);
        sigma.release_memory(machine);
        sigma = sigma_new;
        sigma.charge_memory(machine)?;
        next.charge_memory(machine)?;
        fronts.push(next);
        run.levels += 1;
    }

    // Backward dependency sweep over the stored stack.
    let mut delta = DistMat::<f64>::zero(layout.clone());
    for l in (1..fronts.len()).rev() {
        // wₗ(s,v) = (1 + δ(s,v)) / σ(s,v) on level-l vertices.
        let wl =
            dmat_zip_filter::<SumF64, _, _, f64>(machine, &fronts[l], &delta, |_, _, s_v, d| {
                Some((1.0 + d.copied().unwrap_or(0.0)) / *s_v)
            });
        // Restrict to true predecessors (level l−1) via a structural
        // output mask on the multiply; the zip then only scales by σ.
        let preds = crate::dist::pattern_mask_of(MaskKind::Structural, &fronts[l - 1]);
        let contrib = mm_exec_cached_masked::<CountKernel>(
            machine,
            plan,
            &wl,
            dat,
            Some(&preds),
            back_cache,
        )?;
        run.ops += contrib.ops;
        let upd = dmat_zip_filter::<SumF64, _, _, f64>(
            machine,
            &contrib.c,
            &fronts[l - 1],
            |_, _, x, pred| pred.map(|s_v| x * s_v),
        );
        delta = dmat_combine::<SumF64, _>(machine, &delta, &upd);
    }

    // λ(v) += Σ_s δ(s,v), excluding the sources themselves.
    let masked =
        dmat_zip_filter::<SumF64, _, _, f64>(machine, &delta, &fronts[0], |_, _, d, is_source| {
            if is_source.is_none() {
                Some(*d)
            } else {
                None
            }
        });
    let partial = dmat_column_sums(machine, &masked)?;
    for (v, x) in partial.into_iter().enumerate() {
        run.scores.lambda[v] += x;
    }

    for f in &fronts {
        f.release_memory(machine);
    }
    sigma.release_memory(machine);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::brandes_unweighted;
    use mfbc_algebra::Dist;
    use mfbc_machine::MachineSpec;

    #[test]
    fn matches_brandes_small() {
        let g = Graph::unweighted(
            7,
            false,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 0),
                (1, 5),
            ],
        );
        let want = brandes_unweighted(&g);
        for p in [1usize, 4] {
            let machine = Machine::new(MachineSpec::test(p));
            let run = combblas_bc(&machine, &g, &CombBlasConfig::default()).unwrap();
            assert!(
                run.scores.approx_eq(&want, 1e-9),
                "p={p}: {:?} vs {:?}",
                run.scores.lambda,
                want.lambda
            );
        }
    }

    #[test]
    fn rejects_weighted_graphs() {
        let g = Graph::new(3, true, vec![(0, 1, Dist::new(2))]);
        let machine = Machine::new(MachineSpec::test(4));
        assert_eq!(
            combblas_bc(&machine, &g, &CombBlasConfig::default()).unwrap_err(),
            BaselineError::WeightedUnsupported
        );
    }

    #[test]
    fn rejects_nonsquare_grids() {
        let g = Graph::unweighted(3, false, vec![(0, 1)]);
        let machine = Machine::new(MachineSpec::test(8));
        assert_eq!(
            combblas_bc(&machine, &g, &CombBlasConfig::default()).unwrap_err(),
            BaselineError::NonSquareGrid(8)
        );
    }

    #[test]
    fn directed_graph_matches_brandes() {
        let g = Graph::unweighted(5, true, vec![(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)]);
        let want = brandes_unweighted(&g);
        let machine = Machine::new(MachineSpec::test(4));
        let run = combblas_bc(&machine, &g, &CombBlasConfig::default()).unwrap();
        assert!(run.scores.approx_eq(&want, 1e-9));
    }
}
