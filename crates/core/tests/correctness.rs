//! End-to-end correctness of every BC algorithm against the oracles,
//! on randomized graphs across machine sizes, plan modes, batch
//! sizes, weights, and directedness — the correctness spine of
//! DESIGN.md §2.

use mfbc_core::combblas::{combblas_bc, CombBlasConfig};
use mfbc_core::dist::{mfbc_dist, MfbcConfig, PlanMode};
use mfbc_core::oracle::{brandes_unweighted, brandes_weighted};
use mfbc_core::seq::mfbc_seq;
use mfbc_graph::gen::{rmat, uniform, RmatConfig};
use mfbc_graph::Graph;
use mfbc_machine::{Machine, MachineSpec};
use mfbc_tensor::{MmPlan, Variant1D, Variant2D};

const TOL: f64 = 1e-7;

fn oracle(g: &Graph) -> mfbc_core::BcScores {
    if g.is_unit_weighted() {
        brandes_unweighted(g)
    } else {
        brandes_weighted(g)
    }
}

#[test]
fn seq_mfbc_matches_oracle_on_random_graphs() {
    for (seed, directed, weighted) in [
        (1u64, false, false),
        (2, true, false),
        (3, false, true),
        (4, true, true),
    ] {
        let g = uniform(60, 200, directed, weighted.then_some(10), seed);
        let want = oracle(&g);
        for nb in [7, 60] {
            let (got, _) = mfbc_seq(&g, nb);
            assert!(
                got.approx_eq(&want, TOL),
                "seed={seed} directed={directed} weighted={weighted} nb={nb}: max diff {}",
                got.max_abs_diff(&want)
            );
        }
    }
}

#[test]
fn seq_mfbc_matches_oracle_on_rmat() {
    let g = rmat(&RmatConfig::paper(7, 4, 5));
    let want = brandes_unweighted(&g);
    let (got, stats) = mfbc_seq(&g, 32);
    assert!(
        got.approx_eq(&want, TOL),
        "max diff {}",
        got.max_abs_diff(&want)
    );
    assert!(stats.ops > 0);
    assert_eq!(stats.batches, g.n().div_ceil(32));
}

#[test]
fn dist_auto_matches_oracle_across_machine_sizes() {
    let g = uniform(48, 180, false, None, 11);
    let want = brandes_unweighted(&g);
    for p in [1usize, 2, 4, 8, 9] {
        let machine = Machine::new(MachineSpec::test(p));
        let run = mfbc_dist(
            &machine,
            &g,
            &MfbcConfig {
                batch_size: Some(16),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            run.scores.approx_eq(&want, TOL),
            "p={p}: max diff {}",
            run.scores.max_abs_diff(&want)
        );
        assert_eq!(run.sources_processed, g.n());
    }
}

#[test]
fn dist_weighted_matches_weighted_oracle() {
    let g = uniform(40, 160, true, Some(20), 13);
    assert!(!g.is_unit_weighted());
    let want = brandes_weighted(&g);
    let machine = Machine::new(MachineSpec::test(4));
    let run = mfbc_dist(
        &machine,
        &g,
        &MfbcConfig {
            batch_size: Some(10),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        run.scores.approx_eq(&want, TOL),
        "max diff {}",
        run.scores.max_abs_diff(&want)
    );
}

#[test]
fn ca_mfbc_matches_oracle() {
    let g = uniform(40, 150, false, None, 17);
    let want = brandes_unweighted(&g);
    for (p, c) in [(4usize, 1usize), (4, 4), (8, 2), (16, 4)] {
        let machine = Machine::new(MachineSpec::test(p));
        let run = mfbc_dist(
            &machine,
            &g,
            &MfbcConfig {
                batch_size: Some(20),
                plan_mode: PlanMode::Ca { c },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            run.scores.approx_eq(&want, TOL),
            "p={p} c={c}: max diff {}",
            run.scores.max_abs_diff(&want)
        );
    }
}

#[test]
fn fixed_plan_modes_match_oracle() {
    let g = uniform(30, 100, true, None, 19);
    let want = brandes_unweighted(&g);
    let plans = [
        MmPlan::OneD(Variant1D::A),
        MmPlan::OneD(Variant1D::C),
        MmPlan::TwoD {
            variant: Variant2D::AB,
            p2: 2,
            p3: 2,
        },
        MmPlan::ThreeD {
            split: Variant1D::C,
            inner: Variant2D::BC,
            p1: 2,
            p2: 2,
            p3: 1,
        },
    ];
    for plan in plans {
        let machine = Machine::new(MachineSpec::test(4));
        let run = mfbc_dist(
            &machine,
            &g,
            &MfbcConfig {
                batch_size: Some(30),
                plan_mode: PlanMode::Fixed(plan.clone()),
                max_batches: None,
                amortize_adjacency: true,
                sources: None,
                threads: None,
                masked: true,
            },
        )
        .unwrap();
        assert!(
            run.scores.approx_eq(&want, TOL),
            "plan {plan:?}: max diff {}",
            run.scores.max_abs_diff(&want)
        );
    }
}

#[test]
fn combblas_baseline_matches_oracle() {
    let g = uniform(50, 200, false, None, 23);
    let want = brandes_unweighted(&g);
    for p in [1usize, 4, 16] {
        let machine = Machine::new(MachineSpec::test(p));
        let run = combblas_bc(
            &machine,
            &g,
            &CombBlasConfig {
                batch_size: Some(25),
                max_batches: None,
            },
        )
        .unwrap();
        assert!(
            run.scores.approx_eq(&want, TOL),
            "p={p}: max diff {}",
            run.scores.max_abs_diff(&want)
        );
    }
}

#[test]
fn mfbc_and_combblas_agree_on_rmat() {
    let g = rmat(&RmatConfig::paper(6, 6, 29));
    let m1 = Machine::new(MachineSpec::test(4));
    let mfbc = mfbc_dist(&m1, &g, &MfbcConfig::default()).unwrap();
    let m2 = Machine::new(MachineSpec::test(4));
    let cb = combblas_bc(&m2, &g, &CombBlasConfig::default()).unwrap();
    assert!(
        mfbc.scores.approx_eq(&cb.scores, TOL),
        "max diff {}",
        mfbc.scores.max_abs_diff(&cb.scores)
    );
}

#[test]
fn replication_invariance_of_costless_result() {
    // The scores must not depend on p, c, or plan choices — only the
    // charged costs may. (Batching invariance is covered in seq.)
    let g = uniform(36, 140, false, None, 31);
    let mut results = Vec::new();
    for p in [1usize, 4, 16] {
        let machine = Machine::new(MachineSpec::test(p));
        let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).unwrap();
        results.push(run.scores);
    }
    for w in results.windows(2) {
        assert!(w[0].approx_eq(&w[1], TOL));
    }
}

#[test]
fn directed_rmat_weighted_end_to_end() {
    let cfg = RmatConfig {
        directed: true,
        weights: Some(100),
        ..RmatConfig::paper(6, 4, 37)
    };
    let g = rmat(&cfg);
    let want = brandes_weighted(&g);
    let machine = Machine::new(MachineSpec::test(4));
    let run = mfbc_dist(&machine, &g, &MfbcConfig::default()).unwrap();
    assert!(
        run.scores.approx_eq(&want, TOL),
        "max diff {}",
        run.scores.max_abs_diff(&want)
    );
    // Weighted runs need at least as many relaxation rounds as the
    // unweighted hop count (§7.2's slowdown mechanism).
    assert!(run.forward_iterations >= 1);
}
