//! The scoped worker pool.
//!
//! One [`Pool`] owns `threads - 1` parked OS threads (the calling
//! thread is always participant `0`). A fan-out call publishes a
//! *batch* — a type-erased reference to the per-call closure plus an
//! atomic job cursor — wakes the workers, participates in the work
//! itself, and blocks until every job completed. Because the caller
//! does not return before the last job finishes, jobs may borrow from
//! the caller's stack even though the workers are long-lived; the
//! lifetime erasure below is sound for exactly that reason.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Per-call execution statistics, returned by the `*_stats` entry
/// points and consumed by `mfbc-trace` pool events.
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// Pool size used for the call (participants = workers + caller).
    pub threads: usize,
    /// Jobs executed (the fan-out width of the call).
    pub tasks: u64,
    /// Busy time per participant (index 0 is the calling thread).
    /// Participants that never claimed a job stay at zero.
    pub busy: Vec<Duration>,
    /// Jobs executed per participant.
    pub tasks_per_worker: Vec<u64>,
}

impl ExecStats {
    fn empty(threads: usize) -> ExecStats {
        ExecStats {
            threads,
            tasks: 0,
            busy: vec![Duration::ZERO; threads],
            tasks_per_worker: vec![0; threads],
        }
    }

    /// Number of participants that executed at least one job.
    pub fn participants_used(&self) -> usize {
        self.tasks_per_worker.iter().filter(|&&t| t > 0).count()
    }
}

thread_local! {
    /// Set while this thread is executing pool jobs. Nested fan-out
    /// calls from inside a job run inline on the current thread, so
    /// the pool can never deadlock on itself.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is inside a pool job.
pub(crate) fn in_pool_job() -> bool {
    IN_POOL_JOB.with(|f| f.get())
}

/// RAII marker for "this thread is executing pool jobs". Restores the
/// *previous* value on drop, so a nested inline fan-out returning does
/// not strip the marker from the enclosing job.
struct JobGuard {
    prev: bool,
}

impl JobGuard {
    fn enter() -> JobGuard {
        let prev = IN_POOL_JOB.with(|f| f.replace(true));
        JobGuard { prev }
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL_JOB.with(|f| f.set(prev));
    }
}

/// Type-erased pointer to the per-call job closure.
///
/// The `'static` here is a lie told to the type system; see the
/// module docs and the safety comment in [`Batch::work`] for why the
/// pointer is never dereferenced after the owning call returns.
struct Job(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation from many threads
// is its contract) and the pointer itself is only a capability to
// call it; sending that capability between threads is what the pool
// exists to do.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Completion state of a batch, guarded by one mutex so that when
/// `pending` reaches zero every participant's accounting is already
/// published.
struct DoneState {
    pending: usize,
    busy: Vec<Duration>,
    tasks: Vec<u64>,
    panic: Option<Box<dyn Any + Send>>,
}

/// One fan-out call: the erased closure, the job cursor, and the
/// completion latch.
struct Batch {
    job: Job,
    njobs: usize,
    next: AtomicUsize,
    state: Mutex<DoneState>,
    done_cv: Condvar,
}

impl Batch {
    fn new(job: &(dyn Fn(usize, usize) + Sync), njobs: usize, threads: usize) -> Batch {
        // SAFETY (lifetime erasure): the reference is valid for the
        // duration of the fan-out call, and `Batch::work` proves no
        // job can start after the call returned.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync + 'static),
            >(job as *const _)
        });
        Batch {
            job,
            njobs,
            next: AtomicUsize::new(0),
            state: Mutex::new(DoneState {
                pending: njobs,
                busy: vec![Duration::ZERO; threads],
                tasks: vec![0; threads],
                panic: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, DoneState> {
        // A job panic is propagated through `DoneState::panic`; mutex
        // poisoning carries no extra information here.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Claims and runs jobs until the cursor is exhausted.
    ///
    /// # Safety of the `job` dereference
    /// A job index is only obtained while `next < njobs`. Every
    /// claimed index decrements `pending` exactly once, and the
    /// caller blocks until `pending == 0` before returning from the
    /// fan-out call. Therefore every dereference of `job` happens
    /// before the call returns, while the erased borrow is live. A
    /// participant that arrives late claims nothing and never touches
    /// `job`.
    fn work(&self, participant: usize) {
        let _guard = JobGuard::enter();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.njobs {
                return;
            }
            let f = unsafe { &*self.job.0 };
            let started = Instant::now();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f(participant, i);
            }));
            let elapsed = started.elapsed();
            let mut s = self.lock_state();
            s.busy[participant] += elapsed;
            s.tasks[participant] += 1;
            if let Err(payload) = result {
                if s.panic.is_none() {
                    s.panic = Some(payload);
                }
            }
            s.pending -= 1;
            if s.pending == 0 {
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every job completed, returning the accounting and
    /// any captured panic payload.
    fn wait(&self, threads: usize, njobs: usize) -> (ExecStats, Option<Box<dyn Any + Send>>) {
        let mut s = self.lock_state();
        while s.pending > 0 {
            s = self.done_cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        let stats = ExecStats {
            threads,
            tasks: njobs as u64,
            busy: s.busy.clone(),
            tasks_per_worker: s.tasks.clone(),
        };
        (stats, s.panic.take())
    }
}

/// The batch slot workers poll: `epoch` distinguishes a fresh batch
/// from one a worker has already drained.
struct Slot {
    batch: Option<Arc<Batch>>,
    epoch: u64,
    shutdown: bool,
}

struct PoolInner {
    slot: Mutex<Slot>,
    work_cv: Condvar,
    /// Serializes concurrent fan-out calls from different threads;
    /// held (with the caller working, not idling) for the duration of
    /// a call.
    submit: Mutex<()>,
}

fn worker_loop(inner: &PoolInner, participant: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut s = inner.slot.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if s.shutdown {
                    return;
                }
                if s.epoch != seen_epoch {
                    if let Some(b) = &s.batch {
                        seen_epoch = s.epoch;
                        break b.clone();
                    }
                    seen_epoch = s.epoch;
                }
                s = inner.work_cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        };
        batch.work(participant);
    }
}

/// A shared-memory worker pool of a fixed size.
///
/// `threads == 1` spawns nothing: every call runs inline on the
/// caller, which is also the deterministic reference behaviour the
/// parallel paths must reproduce bit-for-bit.
pub struct Pool {
    threads: usize,
    inner: Option<Arc<PoolInner>>,
}

impl Pool {
    /// Creates a pool executing on `threads` participants (the caller
    /// plus `threads - 1` spawned workers). `0` is clamped to `1`.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        if threads == 1 {
            return Pool {
                threads,
                inner: None,
            };
        }
        let inner = Arc::new(PoolInner {
            slot: Mutex::new(Slot {
                batch: None,
                epoch: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            submit: Mutex::new(()),
        });
        for w in 1..threads {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("mfbc-worker-{w}"))
                .spawn(move || worker_loop(&inner, w))
                .expect("failed to spawn mfbc-parallel worker");
        }
        Pool {
            threads,
            inner: Some(inner),
        }
    }

    /// Pool size (participants including the calling thread).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(participant, job)` for every `job in 0..njobs`,
    /// returning when all jobs completed. The erased core every typed
    /// entry point funnels through.
    fn run(&self, njobs: usize, f: &(dyn Fn(usize, usize) + Sync)) -> ExecStats {
        if njobs == 0 {
            return ExecStats::empty(1);
        }
        let inline = self.inner.is_none() || njobs == 1 || in_pool_job();
        if inline {
            let _guard = JobGuard::enter();
            let started = Instant::now();
            for i in 0..njobs {
                f(0, i);
            }
            let mut stats = ExecStats::empty(1);
            stats.tasks = njobs as u64;
            stats.busy[0] = started.elapsed();
            stats.tasks_per_worker[0] = njobs as u64;
            return stats;
        }
        let inner = self.inner.as_ref().expect("checked above");
        let _submit = inner.submit.lock().unwrap_or_else(|e| e.into_inner());
        let batch = Arc::new(Batch::new(f, njobs, self.threads));
        {
            let mut s = inner.slot.lock().unwrap_or_else(|e| e.into_inner());
            s.epoch += 1;
            s.batch = Some(Arc::clone(&batch));
            inner.work_cv.notify_all();
        }
        batch.work(0);
        let (stats, panic) = batch.wait(self.threads, njobs);
        {
            let mut s = inner.slot.lock().unwrap_or_else(|e| e.into_inner());
            s.batch = None;
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        stats
    }

    /// Maps `0..njobs` through `f` in parallel, collecting results in
    /// job order regardless of completion order.
    pub fn par_map_collect<R, F>(&self, njobs: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_map_collect_stats(njobs, f).0
    }

    /// [`Pool::par_map_collect`] plus the per-call [`ExecStats`].
    pub fn par_map_collect_stats<R, F>(&self, njobs: usize, f: F) -> (Vec<R>, ExecStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.par_scratch_map(|| (), njobs, |(), i| f(i))
    }

    /// Like [`Pool::par_map_collect_stats`], with a per-participant
    /// scratch value created lazily by `init` and reused across every
    /// job that participant executes — so scratch allocation scales
    /// with the pool size, not with the job count.
    ///
    /// Scratch-to-job assignment is scheduling-dependent; results
    /// must not depend on scratch history (the SPA reset-by-stamp
    /// discipline upholds exactly this).
    pub fn par_scratch_map<S, R, I, F>(&self, init: I, njobs: usize, f: F) -> (Vec<R>, ExecStats)
    where
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let scratch: Vec<Mutex<Option<S>>> = (0..self.threads).map(|_| Mutex::new(None)).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..njobs).map(|_| Mutex::new(None)).collect();
        let stats = self.run(njobs, &|participant, i| {
            let mut guard = scratch[participant]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let s = guard.get_or_insert_with(&init);
            let r = f(s, i);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        });
        let out = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every job fills its slot")
            })
            .collect();
        (out, stats)
    }

    /// Splits `items` into contiguous chunks of at most `chunk` items
    /// and maps each through `f(chunk_index, chunk_slice)`, results
    /// in chunk order.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let njobs = items.len().div_ceil(chunk);
        self.par_map_collect(njobs, |i| {
            let lo = i * chunk;
            let hi = (lo + chunk).min(items.len());
            f(i, &items[lo..hi])
        })
    }

    /// Maps each range of `ranges` through `f(range_index)` with a
    /// per-participant scratch, results in range order. Convenience
    /// wrapper used by the flops-balanced kernels; identical to
    /// [`Pool::par_scratch_map`] over `ranges.len()`.
    pub fn par_ranges_scratch<S, R, I, F>(
        &self,
        ranges: &[std::ops::Range<usize>],
        init: I,
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, std::ops::Range<usize>) -> R + Sync,
    {
        self.par_scratch_map(init, ranges.len(), |s, i| f(s, ranges[i].clone()))
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            let mut s = inner.slot.lock().unwrap_or_else(|e| e.into_inner());
            s.shutdown = true;
            inner.work_cv.notify_all();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}
