//! Disjoint-index shared writes.
//!
//! The parallel counting transpose pre-computes, per task, the exact
//! output slots the task will fill (a cursor per output row), so
//! tasks write to provably disjoint index sets of one shared buffer.
//! [`ScatterVec`] is the minimal unsafe cell making those writes
//! expressible; the safety obligation (disjointness + completion
//! before reads) is discharged by the caller's partitioning.

use std::cell::UnsafeCell;

/// A fixed-length buffer allowing unsynchronized writes to *disjoint*
/// indices from multiple threads.
pub struct ScatterVec<T> {
    data: Vec<UnsafeCell<T>>,
}

// SAFETY: `ScatterVec` hands out no references, only the unsafe
// `write` below whose contract forbids two threads touching the same
// index; `T: Send` makes moving values in from any thread sound.
unsafe impl<T: Send> Sync for ScatterVec<T> {}

impl<T> ScatterVec<T> {
    /// Wraps `v`, taking ownership of its storage without copying.
    pub fn from_vec(v: Vec<T>) -> ScatterVec<T> {
        let mut v = std::mem::ManuallyDrop::new(v);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        // SAFETY: `UnsafeCell<T>` is `#[repr(transparent)]` over `T`,
        // so the allocation layout is identical.
        let data = unsafe { Vec::from_raw_parts(ptr as *mut UnsafeCell<T>, len, cap) };
        ScatterVec { data }
    }

    /// Buffer length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Overwrites slot `i` with `v`, dropping the previous value.
    ///
    /// # Safety
    /// * `i < self.len()`;
    /// * no other thread reads or writes index `i` concurrently —
    ///   each index must be owned by exactly one task;
    /// * all writes must complete (synchronize) before
    ///   [`ScatterVec::into_vec`] is called. A pool fan-out provides
    ///   this: the caller blocks on batch completion, which
    ///   synchronizes-with every job.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.data.len());
        unsafe { *self.data[i].get() = v };
    }

    /// Unwraps into the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        let mut data = std::mem::ManuallyDrop::new(self.data);
        let (ptr, len, cap) = (data.as_mut_ptr(), data.len(), data.capacity());
        // SAFETY: inverse of `from_vec`; same transparent layout.
        unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let sv = ScatterVec::from_vec(vec![0u64; 8]);
        for i in 0..8 {
            // SAFETY: single thread, distinct indices.
            unsafe { sv.write(i, (i * i) as u64) };
        }
        assert_eq!(sv.len(), 8);
        assert_eq!(sv.into_vec(), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn drops_previous_values_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] u8);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let sv = ScatterVec::from_vec(vec![D(0), D(1)]);
            // SAFETY: single thread, index in bounds.
            unsafe { sv.write(0, D(9)) };
            let _v = sv.into_vec();
        }
        // 3 values ever constructed (2 initial + 1 written), all
        // dropped: the overwritten one at write time, the rest at
        // scope exit.
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn option_fill_pattern() {
        let sv = ScatterVec::from_vec(vec![None::<String>; 3]);
        unsafe {
            sv.write(1, Some("x".to_string()));
            sv.write(0, Some("y".to_string()));
            sv.write(2, Some("z".to_string()));
        }
        let v: Vec<String> = sv.into_vec().into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(v, vec!["y", "x", "z"]);
    }
}
