//! Weight-balanced contiguous partitioning.
//!
//! The parallel SpGEMM splits output rows into ranges of roughly
//! equal *flops* (Σ over rows of the row's elementary products), not
//! equal row counts — power-law graphs concentrate most flops in a
//! few heavy rows, so fixed-size chunking starves all but one worker.

use std::ops::Range;

/// Splits `0..weights.len()` into at most `nparts` contiguous,
/// non-empty ranges whose weight sums are as balanced as a greedy
/// prefix walk allows. Deterministic in its inputs; the concatenation
/// of the ranges is always exactly `0..weights.len()`, in order.
///
/// Items with weight 0 still advance the walk, so all-zero inputs
/// degrade to an even split by count.
pub fn balanced_ranges(weights: &[u64], nparts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let nparts = nparts.clamp(1, n);
    if nparts == 1 {
        return std::iter::once(0..n).collect();
    }
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        // Even split by item count.
        return (0..nparts)
            .map(|p| (p * n / nparts)..((p + 1) * n / nparts))
            .filter(|r| !r.is_empty())
            .collect();
    }
    let mut cuts: Vec<usize> = Vec::with_capacity(nparts + 1);
    cuts.push(0);
    let mut prefix: u128 = 0;
    let mut next_part: u128 = 1;
    for (i, &w) in weights.iter().enumerate() {
        prefix += w as u128;
        // Close every part whose weight share the prefix has reached;
        // a single huge item may close several at once (the duplicate
        // cuts are filtered below).
        while next_part < nparts as u128 && prefix * nparts as u128 >= total * next_part {
            cuts.push(i + 1);
            next_part += 1;
        }
    }
    cuts.push(n);
    let mut out = Vec::with_capacity(cuts.len() - 1);
    for pair in cuts.windows(2) {
        if pair[0] < pair[1] {
            out.push(pair[0]..pair[1]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(ranges: &[Range<usize>], n: usize) {
        let mut at = 0;
        for r in ranges {
            assert_eq!(r.start, at, "ranges must tile in order");
            assert!(r.end > r.start, "empty range");
            at = r.end;
        }
        assert_eq!(at, n);
    }

    #[test]
    fn covers_and_orders() {
        let w = vec![1u64; 100];
        let r = balanced_ranges(&w, 7);
        check_cover(&r, 100);
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn balances_skewed_weights() {
        // One heavy item at the front, long light tail.
        let mut w = vec![1u64; 64];
        w[0] = 1000;
        let r = balanced_ranges(&w, 4);
        check_cover(&r, 64);
        // The heavy item gets a range of its own.
        assert_eq!(r[0], 0..1);
    }

    #[test]
    fn huge_item_mid_stream() {
        let w = vec![1, 1, 10_000, 1, 1];
        let r = balanced_ranges(&w, 4);
        check_cover(&r, 5);
        // The huge item closes several parts at once; duplicates are
        // filtered, so ranges stay non-empty.
        assert!(r.iter().all(|x| !x.is_empty()));
    }

    #[test]
    fn all_zero_weights_split_evenly() {
        let r = balanced_ranges(&[0; 10], 3);
        check_cover(&r, 10);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn more_parts_than_items() {
        let r = balanced_ranges(&[5, 5], 8);
        check_cover(&r, 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_and_single() {
        assert!(balanced_ranges(&[], 4).is_empty());
        assert_eq!(balanced_ranges(&[9], 4), vec![0..1]);
        assert_eq!(balanced_ranges(&[1, 2, 3], 1), vec![0..3]);
    }

    #[test]
    fn weights_within_two_targets() {
        // No part (except ones forced by a single heavy item) should
        // exceed ~2x the ideal share.
        let w: Vec<u64> = (0..200).map(|i| (i % 17) as u64 + 1).collect();
        let total: u64 = w.iter().sum();
        let parts = 8u64;
        for r in balanced_ranges(&w, parts as usize) {
            let s: u64 = w[r].iter().sum();
            assert!(s <= 2 * total / parts + 17, "part weight {s} too large");
        }
    }
}
