//! `mfbc-parallel`: dependency-free shared-memory parallelism for the
//! MFBC stack.
//!
//! The workspace previously "parallelized" its local kernels through a
//! sequential `rayon` stub; this crate replaces that with a real
//! `std::thread`-based scoped pool while keeping the one property the
//! cost model and conformance suites depend on: **determinism**.
//! Every fan-out assigns each output element to exactly one job and
//! assembles results in job order, so parallel results are
//! bit-identical to the serial reference at any thread count.
//!
//! # Sizing and selection
//!
//! * [`global()`] — the process-wide pool, lazily created on first
//!   use. Sized by the `MFBC_THREADS` environment variable when set
//!   (a positive integer; `1` means "serial: spawn nothing"),
//!   otherwise by [`std::thread::available_parallelism`].
//! * [`sized(n)`] — a leaked pool of exactly `n` participants,
//!   memoized per size. Lets tests and benches compare thread counts
//!   inside one process regardless of the environment.
//! * [`with_threads(n, f)`] — runs `f` with a thread-local override:
//!   every kernel that resolves its pool through [`current()`] (all
//!   of `mfbc-sparse` / `mfbc-tensor` do) uses `n` participants for
//!   the duration of `f`. Nestable; restores the previous override.
//!
//! # Determinism contract
//!
//! [`Pool::par_map_collect`] and friends return results **in job
//! order**, never in completion order, and each job index is executed
//! exactly once by exactly one participant. Per-participant scratch
//! ([`Pool::par_scratch_map`]) is the only scheduling-dependent state,
//! and its contract requires results not to depend on scratch history.
//! Floating-point reductions that are order-sensitive must therefore
//! be performed by the *caller* over the ordered results, which is
//! exactly how the ported kernels charge the cost model.

#![deny(missing_docs)]

mod partition;
mod pool;
mod scatter;

pub use partition::balanced_ranges;
pub use pool::{ExecStats, Pool};
pub use scatter::ScatterVec;

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

/// Environment variable controlling the [`global()`] pool size.
pub const THREADS_ENV: &str = "MFBC_THREADS";

/// Leaked, memoized pools by size. Pools are small (a handful of
/// parked threads) and the set of distinct sizes a process asks for is
/// tiny, so leaking is the honest lifetime.
fn registry() -> &'static Mutex<Vec<(usize, &'static Pool)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(usize, &'static Pool)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Returns the memoized pool of exactly `threads` participants
/// (clamped to at least 1), creating and leaking it on first request.
pub fn sized(threads: usize) -> &'static Pool {
    let threads = threads.max(1);
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, p)) = reg.iter().find(|(n, _)| *n == threads) {
        return p;
    }
    let pool: &'static Pool = Box::leak(Box::new(Pool::new(threads)));
    reg.push((threads, pool));
    pool
}

/// Reads `MFBC_THREADS`, returning `None` when unset or empty.
///
/// # Panics
/// On a value that is not a positive integer — a silently ignored
/// typo would change performance without changing results, which is
/// the worst way to fail.
pub fn threads_from_env() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => panic!("{THREADS_ENV} must be a positive integer, got {raw:?}"),
    }
}

/// The process-wide pool: sized by `MFBC_THREADS` when set, otherwise
/// by available parallelism. Created lazily — a process that never
/// fans out (or runs with `MFBC_THREADS=1`) spawns no threads.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<&'static Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = threads_from_env().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        sized(threads)
    })
}

thread_local! {
    /// Per-thread pool-size override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with [`current()`] resolving to a pool of `threads`
/// participants on this thread. Nestable: the previous override is
/// restored when `f` returns or panics.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            OVERRIDE.with(|o| o.set(prev));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// The pool the current thread should fan out on: the innermost
/// [`with_threads`] override if one is active, else [`global()`].
pub fn current() -> &'static Pool {
    match OVERRIDE.with(|o| o.get()) {
        Some(n) => sized(n),
        None => global(),
    }
}

/// Participant count of [`current()`] — handy for sizing partitions
/// without touching the pool.
pub fn current_threads() -> usize {
    current().threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_spawns_nothing_and_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        let ids = pool.par_map_collect(8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn results_in_job_order_despite_uneven_work() {
        let pool = sized(4);
        let out = pool.par_map_collect(64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_runs_are_identical() {
        let pool = sized(4);
        let reference: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        for _ in 0..10 {
            let got = pool.par_map_collect(200, |i| (i as u64).wrapping_mul(0x9e3779b9));
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn scratch_allocations_bounded_by_pool_size() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let pool = sized(4);
        let (out, stats) = pool.par_scratch_map(
            || {
                INITS.fetch_add(1, Ordering::SeqCst);
                vec![0u8; 16]
            },
            100,
            |s, i| {
                s[0] = s[0].wrapping_add(1);
                i
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(
            INITS.load(Ordering::SeqCst) <= 4,
            "scratch must not scale with jobs"
        );
        assert_eq!(stats.tasks, 100);
        assert_eq!(stats.tasks_per_worker.iter().sum::<u64>(), 100);
    }

    #[test]
    fn par_chunks_tiles_input() {
        let pool = sized(2);
        let items: Vec<usize> = (0..10).collect();
        let sums = pool.par_chunks(&items, 3, |ci, chunk| (ci, chunk.iter().sum::<usize>()));
        assert_eq!(sums, vec![(0, 3), (1, 12), (2, 21), (3, 9)]);
    }

    #[test]
    fn nested_fanout_runs_inline_without_deadlock() {
        let pool = sized(4);
        let out = pool.par_map_collect(8, |i| {
            let inner = pool.par_map_collect(4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_in_job_propagates_and_pool_survives() {
        let pool = sized(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_map_collect(16, |i| {
                if i == 9 {
                    panic!("job 9 exploded");
                }
                i
            })
        }));
        assert!(caught.is_err());
        // The pool remains usable after a job panic.
        let out = pool.par_map_collect(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        assert!(OVERRIDE.with(|o| o.get()).is_none());
        let inner = with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(2, || {
                assert_eq!(current_threads(), 2);
            });
            assert_eq!(current_threads(), 3);
            current_threads()
        });
        assert_eq!(inner, 3);
        assert!(OVERRIDE.with(|o| o.get()).is_none());
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let _ = std::panic::catch_unwind(|| {
            with_threads(5, || panic!("boom"));
        });
        assert!(OVERRIDE.with(|o| o.get()).is_none());
    }

    #[test]
    fn sized_memoizes() {
        let a = sized(2) as *const Pool;
        let b = sized(2) as *const Pool;
        assert_eq!(a, b);
        assert_ne!(a, sized(3) as *const Pool);
    }

    #[test]
    fn stats_reflect_execution() {
        let pool = sized(2);
        let (out, stats) = pool.par_map_collect_stats(32, |i| i);
        assert_eq!(out.len(), 32);
        assert_eq!(stats.tasks, 32);
        assert_eq!(stats.tasks_per_worker.iter().sum::<u64>(), 32);
        assert!(stats.participants_used() >= 1);
        assert_eq!(stats.busy.len(), stats.tasks_per_worker.len());
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = sized(4);
        let out: Vec<usize> = pool.par_map_collect(0, |i| i);
        assert!(out.is_empty());
    }
}
